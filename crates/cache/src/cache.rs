//! The expert cache proper.

use crate::arena::LinkArena;
use crate::policy::EvictionPolicy;
use crate::stats::CacheStats;
use fmoe_model::{ExpertId, ModelConfig};
use fmoe_trace::{Marker, TraceSink, NO_REQUEST, NO_VALUE};
use std::collections::BTreeMap;

/// One resident expert's arena node: its identity, footprint, and pin
/// state live together in the intrusive list (newest → oldest insertion
/// order), so byte/pin lookups are one index hop after the id lookup.
#[derive(Debug, Clone, Copy)]
struct Resident {
    expert: ExpertId,
    bytes: u64,
    pinned: bool,
}

/// Sentinel arena index meaning "not resident" in the dense index.
const NO_SLOT: u32 = u32::MAX;

/// Expert id → arena node index, in one of two representations.
///
/// `Dense` is the default: a flat `Vec<u32>` keyed by
/// [`ExpertId::dense_index`], so residency lookups are an array load
/// instead of a `BTreeMap` descent. `Reference` retains the pre-dense
/// `BTreeMap` core so the differential suite can pin the two against
/// each other (DESIGN.md §16). Both iterate in ascending expert-id
/// order — for `Dense` that is ascending dense index, which equals
/// `ExpertId`'s `(layer, slot)` `Ord` — so victim-candidate lists and
/// `resident_experts` stay byte-identical across representations.
#[derive(Debug)]
enum ResidencyIndex {
    Dense {
        /// Arena index per dense expert id; `NO_SLOT` when absent.
        slots: Vec<u32>,
        len: usize,
        experts_per_layer: u32,
    },
    Reference(BTreeMap<ExpertId, u32>),
}

impl ResidencyIndex {
    fn dense(config: &ModelConfig) -> Self {
        let capacity = config.num_layers as usize * config.experts_per_layer as usize;
        Self::Dense {
            slots: vec![NO_SLOT; capacity],
            len: 0,
            experts_per_layer: config.experts_per_layer,
        }
    }

    /// Whether `expert` can be represented at all. `Dense` bound-checks
    /// against the model's `L·J` id space; `Reference` holds anything.
    fn in_range(&self, expert: ExpertId) -> bool {
        match self {
            Self::Dense {
                slots,
                experts_per_layer,
                ..
            } => expert.dense_index(*experts_per_layer) < slots.len(),
            Self::Reference(_) => true,
        }
    }

    fn get(&self, expert: ExpertId) -> Option<u32> {
        match self {
            Self::Dense {
                slots,
                experts_per_layer,
                ..
            } => slots
                .get(expert.dense_index(*experts_per_layer))
                .copied()
                .filter(|&idx| idx != NO_SLOT),
            Self::Reference(map) => map.get(&expert).copied(),
        }
    }

    /// Inserts the mapping; the caller guarantees `expert` is in range
    /// and not already present (out-of-range inserts are dropped).
    fn insert(&mut self, expert: ExpertId, arena_idx: u32) {
        match self {
            Self::Dense {
                slots,
                len,
                experts_per_layer,
            } => {
                if let Some(slot) = slots.get_mut(expert.dense_index(*experts_per_layer)) {
                    if *slot == NO_SLOT {
                        *len += 1;
                    }
                    *slot = arena_idx;
                }
            }
            Self::Reference(map) => {
                map.insert(expert, arena_idx);
            }
        }
    }

    fn remove(&mut self, expert: ExpertId) -> Option<u32> {
        match self {
            Self::Dense {
                slots,
                len,
                experts_per_layer,
            } => {
                let slot = slots.get_mut(expert.dense_index(*experts_per_layer))?;
                let idx = (*slot != NO_SLOT).then_some(*slot)?;
                *slot = NO_SLOT;
                *len -= 1;
                Some(idx)
            }
            Self::Reference(map) => map.remove(&expert),
        }
    }

    fn len(&self) -> usize {
        match self {
            Self::Dense { len, .. } => *len,
            Self::Reference(map) => map.len(),
        }
    }

    fn clear(&mut self) {
        match self {
            Self::Dense { slots, len, .. } => {
                slots.fill(NO_SLOT);
                *len = 0;
            }
            Self::Reference(map) => map.clear(),
        }
    }

    /// `(expert, arena index)` pairs in ascending expert-id order — the
    /// iteration order both representations share (see type docs).
    fn iter(&self) -> IndexIter<'_> {
        match self {
            Self::Dense {
                slots,
                experts_per_layer,
                ..
            } => IndexIter::Dense {
                slots,
                pos: 0,
                experts_per_layer: *experts_per_layer,
            },
            Self::Reference(map) => IndexIter::Reference(map.iter()),
        }
    }
}

/// Iterator over a [`ResidencyIndex`], ascending expert-id order.
enum IndexIter<'a> {
    Dense {
        slots: &'a [u32],
        pos: usize,
        experts_per_layer: u32,
    },
    Reference(std::collections::btree_map::Iter<'a, ExpertId, u32>),
}

impl Iterator for IndexIter<'_> {
    type Item = (ExpertId, u32);

    fn next(&mut self) -> Option<(ExpertId, u32)> {
        match self {
            Self::Dense {
                slots,
                pos,
                experts_per_layer,
            } => {
                while *pos < slots.len() {
                    let i = *pos;
                    *pos += 1;
                    if slots[i] != NO_SLOT {
                        return Some((ExpertId::from_dense_index(i, *experts_per_layer), slots[i]));
                    }
                }
                None
            }
            Self::Reference(iter) => iter.next().map(|(e, idx)| (*e, *idx)),
        }
    }
}

/// How experts map to home GPUs under expert parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum Placement {
    /// Round-robin over the dense expert index — the paper's §5 choice,
    /// which spreads every layer's experts across all links.
    #[default]
    RoundRobin,
    /// Contiguous layer blocks: each GPU owns a slab of consecutive
    /// layers (the naive pipeline-style placement; the ablation shows why
    /// the paper avoids it — a layer's on-demand loads serialize on one
    /// link).
    LayerContiguous,
}

/// Result of attempting to insert an expert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The expert is now resident; `evicted` lists experts removed to make
    /// room (possibly empty).
    Inserted {
        /// Experts evicted to make room, in eviction order.
        evicted: Vec<ExpertId>,
    },
    /// The expert was already resident; treated as a touch.
    AlreadyResident,
    /// The expert can never fit (its size exceeds its GPU's whole budget),
    /// or eviction could not free enough unpinned bytes.
    Rejected,
}

/// A byte-budgeted expert cache spanning one or more GPUs.
///
/// Every expert has a fixed home GPU assigned round-robin over its dense
/// index (the paper's §5 expert-parallel placement); budgets and evictions
/// are per-GPU. Pinned experts (the ones executing in the current layer)
/// are never chosen as victims.
///
/// ```
/// use fmoe_cache::{ExpertCache, LruPolicy, InsertOutcome};
/// use fmoe_model::{presets, ExpertId};
///
/// let model = presets::tiny_test_model();
/// // Room for two experts on one GPU.
/// let mut cache = ExpertCache::new(
///     &model,
///     model.expert_bytes() * 2,
///     1,
///     Box::new(LruPolicy::new()),
/// );
/// cache.insert(ExpertId::new(0, 0), 1);
/// cache.insert(ExpertId::new(0, 1), 2);
/// // A third insert evicts the least recently used.
/// let out = cache.insert(ExpertId::new(0, 2), 3);
/// assert_eq!(out, InsertOutcome::Inserted { evicted: vec![ExpertId::new(0, 0)] });
/// ```
#[derive(Debug)]
pub struct ExpertCache {
    experts_per_layer: u32,
    num_layers: u32,
    expert_bytes: u64,
    num_gpus: u32,
    placement: Placement,
    /// Optional explicit owner table (dense expert index → GPU) installed
    /// by a placement policy; overrides `placement` when present.
    assignment: Option<Vec<u32>>,
    per_gpu_budget: u64,
    per_gpu_used: Vec<u64>,
    /// Arena-allocated residency nodes (`Vec<Option<Node>>` + `u32`
    /// indices, no unsafe), intrusively linked newest → oldest in
    /// insertion order. Full-precision experts occupy `expert_bytes`;
    /// quantized ones less.
    arena: LinkArena<Resident>,
    /// Expert id → arena node. Iterating this yields residents in id
    /// order, which is what keeps victim-candidate lists (and thus the
    /// whole sim path) byte-identical across index representations.
    index: ResidencyIndex,
    policy: Box<dyn EvictionPolicy>,
    stats: CacheStats,
    /// Reused victim-candidate buffer (`mem::take` round-trip), so
    /// steady-state evictions allocate nothing.
    victim_buf: Vec<ExpertId>,
    /// Observability sink; disabled by default (zero-cost no-op).
    trace: TraceSink,
    /// Latest virtual time any caller passed in, used to timestamp
    /// events from entry points that carry no clock (budget retunes).
    last_now: u64,
}

impl ExpertCache {
    /// Creates a cache for `config`'s experts with a *total* byte budget
    /// split evenly across `num_gpus`.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus == 0`.
    #[must_use]
    pub fn new(
        config: &ModelConfig,
        total_budget_bytes: u64,
        num_gpus: u32,
        policy: Box<dyn EvictionPolicy>,
    ) -> Self {
        assert!(num_gpus > 0, "need at least one GPU");
        Self {
            experts_per_layer: config.experts_per_layer,
            num_layers: config.num_layers,
            expert_bytes: config.expert_bytes(),
            num_gpus,
            placement: Placement::RoundRobin,
            assignment: None,
            per_gpu_budget: total_budget_bytes / u64::from(num_gpus),
            per_gpu_used: vec![0; num_gpus as usize],
            arena: LinkArena::new(),
            index: ResidencyIndex::dense(config),
            policy,
            stats: CacheStats::default(),
            victim_buf: Vec::new(),
            trace: TraceSink::disabled(),
            last_now: 0,
        }
    }

    /// Switches the residency index to the retained `BTreeMap` reference
    /// representation (differential testing; DESIGN.md §16). Existing
    /// residents migrate, so this is safe at any point, though the
    /// intended use is right after construction.
    #[must_use]
    pub fn with_reference_index(mut self) -> Self {
        let entries: Vec<(ExpertId, u32)> = self.index.iter().collect();
        self.index = ResidencyIndex::Reference(entries.into_iter().collect());
        self
    }

    /// Installs an observability sink. Insert/evict/reject markers and
    /// counters are emitted into it; with a disabled sink (the default)
    /// every emission is a no-op and cache behavior is untouched.
    pub fn set_trace_sink(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// Emits a cache marker attributed to `expert`'s layer/slot and home
    /// GPU.
    fn mark(&self, marker: Marker, expert: ExpertId, now: u64, value: u64) {
        self.trace.instant(
            now,
            marker,
            NO_REQUEST,
            expert.layer,
            expert.slot,
            self.home_gpu(expert),
            value,
        );
    }

    /// Switches the expert-parallel placement scheme (ablations; the
    /// paper's choice is round-robin).
    #[must_use]
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Installs an explicit owner table produced by a placement policy:
    /// `owners[dense_index]` is the expert's home GPU. Entries are
    /// clamped to the GPU count; experts past the table's end fall back
    /// to the structural placement. With no table installed (the
    /// default) behavior is byte-identical to the structural placement.
    pub fn set_assignment(&mut self, owners: Vec<u32>) {
        self.assignment = Some(owners);
    }

    /// The installed explicit owner table, if any.
    #[must_use]
    pub fn assignment(&self) -> Option<&[u32]> {
        self.assignment.as_deref()
    }

    /// The home GPU index of an expert under the configured placement.
    #[must_use]
    pub fn home_gpu(&self, expert: ExpertId) -> u32 {
        if let Some(owners) = &self.assignment {
            if let Some(&gpu) = owners.get(expert.dense_index(self.experts_per_layer)) {
                return gpu.min(self.num_gpus.saturating_sub(1));
            }
        }
        match self.placement {
            Placement::RoundRobin => {
                (expert.dense_index(self.experts_per_layer) % self.num_gpus as usize) as u32
            }
            Placement::LayerContiguous => {
                (u64::from(expert.layer) * u64::from(self.num_gpus)
                    / u64::from(self.num_layers.max(1))) as u32
            }
        }
    }

    /// Bytes one expert occupies.
    #[must_use]
    pub fn expert_bytes(&self) -> u64 {
        self.expert_bytes
    }

    /// Per-GPU byte budget.
    #[must_use]
    pub fn per_gpu_budget(&self) -> u64 {
        self.per_gpu_budget
    }

    /// Number of experts each GPU can hold.
    #[must_use]
    pub fn slots_per_gpu(&self) -> u64 {
        if self.expert_bytes == 0 {
            return u64::MAX;
        }
        self.per_gpu_budget / self.expert_bytes
    }

    /// `true` when `expert` is resident.
    #[must_use]
    pub fn contains(&self, expert: ExpertId) -> bool {
        self.index.get(expert).is_some()
    }

    /// Number of resident experts.
    #[must_use]
    pub fn resident_count(&self) -> usize {
        self.index.len()
    }

    /// Bytes used on one GPU.
    #[must_use]
    pub fn used_bytes(&self, gpu: u32) -> u64 {
        self.per_gpu_used[gpu as usize]
    }

    /// Total bytes used across GPUs.
    #[must_use]
    pub fn total_used_bytes(&self) -> u64 {
        self.per_gpu_used.iter().sum()
    }

    /// Records an access: a hit touches the policy bookkeeping, a miss
    /// only counts. Returns whether it was a hit.
    pub fn record_access(&mut self, expert: ExpertId, now: u64) -> bool {
        self.last_now = self.last_now.max(now);
        self.stats.lookups += 1;
        if self.contains(expert) {
            self.stats.hits += 1;
            self.policy.on_hit(expert, now);
            self.trace.count("cache.hits", 1);
            true
        } else {
            self.stats.misses += 1;
            self.trace.count("cache.misses", 1);
            false
        }
    }

    /// Inserts `expert` at full precision, evicting unpinned experts from
    /// its home GPU as needed.
    pub fn insert(&mut self, expert: ExpertId, now: u64) -> InsertOutcome {
        self.insert_sized(expert, self.expert_bytes, now)
    }

    /// Inserts `expert` occupying `bytes` (mixed-precision extension:
    /// quantized experts occupy less than [`Self::expert_bytes`]).
    /// Re-inserting a resident expert with a different size re-accounts
    /// its footprint (e.g. a precision upgrade).
    pub fn insert_sized(&mut self, expert: ExpertId, bytes: u64, now: u64) -> InsertOutcome {
        self.insert_impl(expert, bytes, now, false)
    }

    /// [`Self::insert`] for warm-restart replay: identical residency and
    /// eviction behaviour, but the insert is booked under
    /// [`CacheStats::warmup_inserts`] instead of `insertions`, so
    /// lifetime accounting that merges a pre-crash snapshot back in
    /// (see [`CacheStats::merged`]) never double-counts replayed experts
    /// as fresh demand insertions.
    pub fn insert_warm(&mut self, expert: ExpertId, now: u64) -> InsertOutcome {
        self.insert_impl(expert, self.expert_bytes, now, true)
    }

    fn insert_impl(&mut self, expert: ExpertId, bytes: u64, now: u64, warm: bool) -> InsertOutcome {
        self.last_now = self.last_now.max(now);
        if !self.index.in_range(expert) {
            // An id outside the model's L·J space can never be stored in
            // the dense index; refuse it the way an oversized expert is
            // refused rather than panicking.
            self.stats.rejected_inserts += 1;
            self.mark(Marker::CacheReject, expert, now, bytes);
            self.trace.count("cache.rejected_inserts", 1);
            return InsertOutcome::Rejected;
        }
        if let Some(idx) = self.index.get(expert) {
            self.policy.on_hit(expert, now);
            let existing = self.arena.get(idx).map_or(self.expert_bytes, |r| r.bytes);
            if existing != bytes {
                let gpu = self.home_gpu(expert) as usize;
                self.per_gpu_used[gpu] = self.per_gpu_used[gpu] - existing + bytes;
                if let Some(r) = self.arena.get_mut(idx) {
                    r.bytes = bytes;
                }
            }
            return InsertOutcome::AlreadyResident;
        }
        if bytes > self.per_gpu_budget {
            self.stats.rejected_inserts += 1;
            self.mark(Marker::CacheReject, expert, now, bytes);
            self.trace.count("cache.rejected_inserts", 1);
            return InsertOutcome::Rejected;
        }
        let gpu = self.home_gpu(expert);
        let mut evicted = Vec::new();
        while self.per_gpu_used[gpu as usize] + bytes > self.per_gpu_budget {
            let Some(victim) = self.choose_victim(gpu) else {
                // Everything resident on this GPU is pinned: cannot evict.
                self.stats.rejected_inserts += 1;
                for v in &evicted {
                    // Roll back is not meaningful (bytes already freed);
                    // keep evictions as-is but refuse the insert.
                    let _ = v;
                }
                self.mark(Marker::CacheReject, expert, now, bytes);
                self.trace.count("cache.rejected_inserts", 1);
                return InsertOutcome::Rejected;
            };
            self.remove_internal(victim);
            self.stats.evictions += 1;
            self.mark(Marker::CacheEvict, victim, now, NO_VALUE);
            self.trace.count("cache.evictions", 1);
            evicted.push(victim);
        }
        self.per_gpu_used[gpu as usize] += bytes;
        let idx = self.arena.push_head(Resident {
            expert,
            bytes,
            pinned: false,
        });
        self.index.insert(expert, idx);
        self.policy.on_insert(expert, now);
        if warm {
            self.stats.warmup_inserts += 1;
        } else {
            self.stats.insertions += 1;
        }
        self.mark(Marker::CacheInsert, expert, now, bytes);
        self.trace.count("cache.insertions", 1);
        InsertOutcome::Inserted { evicted }
    }

    /// Asks the policy for a victim among unpinned residents homed on
    /// `gpu`. Candidates are gathered in expert-id order (the order the
    /// pre-arena `BTreeMap` core produced — load-bearing for
    /// byte-identical victim selection) into a reused buffer, so
    /// steady-state evictions allocate nothing.
    fn choose_victim(&mut self, gpu: u32) -> Option<ExpertId> {
        let mut buf = std::mem::take(&mut self.victim_buf);
        buf.clear();
        buf.extend(self.index.iter().filter_map(|(e, idx)| {
            (self.home_gpu(e) == gpu && self.arena.get(idx).is_some_and(|r| !r.pinned)).then_some(e)
        }));
        let victim = self.policy.choose_victim_mut(&buf);
        self.victim_buf = buf;
        victim
    }

    /// Bytes a resident expert occupies, or `None` if not resident.
    #[must_use]
    pub fn resident_bytes(&self, expert: ExpertId) -> Option<u64> {
        let idx = self.index.get(expert)?;
        self.arena.get(idx).map(|r| r.bytes)
    }

    /// `true` when `expert` is resident below full precision.
    #[must_use]
    pub fn is_degraded(&self, expert: ExpertId) -> bool {
        self.resident_bytes(expert)
            .is_some_and(|b| b < self.expert_bytes)
    }

    /// Explicitly removes an expert (e.g. model unload). No-op when not
    /// resident.
    pub fn remove(&mut self, expert: ExpertId) -> bool {
        if self.contains(expert) {
            self.remove_internal(expert);
            true
        } else {
            false
        }
    }

    fn remove_internal(&mut self, expert: ExpertId) {
        let gpu = self.home_gpu(expert);
        let bytes = self
            .index
            .remove(expert)
            .and_then(|idx| self.arena.remove(idx))
            .map_or(self.expert_bytes, |r| r.bytes);
        self.per_gpu_used[gpu as usize] -= bytes;
        self.policy.on_remove(expert);
    }

    /// Pins an expert so it cannot be evicted (current-layer experts
    /// during execution). Pinning a non-resident expert is a no-op and
    /// returns `false`.
    pub fn pin(&mut self, expert: ExpertId) -> bool {
        let Some(idx) = self.index.get(expert) else {
            return false;
        };
        if let Some(r) = self.arena.get_mut(idx) {
            r.pinned = true;
        }
        true
    }

    /// Removes one expert's pin. No-op when not pinned.
    pub fn unpin(&mut self, expert: ExpertId) {
        if let Some(idx) = self.index.get(expert) {
            if let Some(r) = self.arena.get_mut(idx) {
                r.pinned = false;
            }
        }
    }

    /// Clears all pins. Walks the arena directly, so no per-call
    /// allocation.
    pub fn unpin_all(&mut self) {
        self.arena.for_each_value_mut(|r| r.pinned = false);
    }

    /// Pushes a probability belief to the policy (fMoE's searched-map
    /// probabilities; ignored by LRU/LFU).
    pub fn update_probability(&mut self, expert: ExpertId, probability: f64) {
        self.policy.update_probability(expert, probability);
    }

    /// Signals an iteration boundary to the policy (stale-belief drop).
    pub fn notify_iteration_boundary(&mut self) {
        self.policy.on_iteration_boundary();
    }

    /// Retunes the total byte budget at runtime (SwapMoE-style tunable
    /// memory: the expert cache must yield GPU memory when KV-cache or
    /// activation pressure grows, and may reclaim it later). Shrinking
    /// evicts policy-chosen victims until every GPU fits its new budget;
    /// pinned experts are never evicted, so the used bytes may exceed a
    /// drastically shrunken budget until pins release. Returns the
    /// evicted experts.
    pub fn set_total_budget(&mut self, total_budget_bytes: u64) -> Vec<ExpertId> {
        self.per_gpu_budget = total_budget_bytes / u64::from(self.num_gpus);
        let mut evicted = Vec::new();
        for gpu in 0..self.num_gpus {
            while self.per_gpu_used[gpu as usize] > self.per_gpu_budget {
                let Some(victim) = self.choose_victim(gpu) else {
                    break; // everything left is pinned
                };
                self.remove_internal(victim);
                self.stats.evictions += 1;
                // Budget retunes carry no clock; stamp evictions at the
                // latest time the cache has observed.
                self.mark(Marker::CacheEvict, victim, self.last_now, NO_VALUE);
                self.trace.count("cache.evictions", 1);
                evicted.push(victim);
            }
        }
        if !evicted.is_empty() {
            self.trace
                .set_gauge("cache.per_gpu_budget_bytes", self.per_gpu_budget);
        }
        evicted
    }

    /// Signals that `layer` finished executing (forecast expiry).
    pub fn notify_layer_done(&mut self, layer: u32) {
        self.policy.expire_layer(layer);
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The policy's display name.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Drops all residency, pins and statistics, keeping the policy's
    /// long-term bookkeeping intact only if `reset_policy` is `false`.
    pub fn clear(&mut self, reset_policy: bool) {
        self.arena.clear();
        self.index.clear();
        for used in &mut self.per_gpu_used {
            *used = 0;
        }
        self.stats = CacheStats::default();
        if reset_policy {
            self.policy.reset();
        }
    }

    /// Iterator over resident experts (expert-id order).
    pub fn resident_experts(&self) -> impl Iterator<Item = ExpertId> + '_ {
        self.index.iter().map(|(e, _)| e)
    }

    /// Iterator over resident experts oldest-insertion-first — the
    /// arena's intrusive-list order, which FIFO evicts in and SIEVE's
    /// hand sweeps through.
    pub fn resident_oldest_first(&self) -> impl Iterator<Item = ExpertId> + '_ {
        self.arena.iter_oldest_first().map(|(_, r)| r.expert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FmoePriorityPolicy, LfuPolicy, LruPolicy};
    use fmoe_model::presets;

    fn tiny_cache(slots_per_gpu: u64, gpus: u32) -> ExpertCache {
        let cfg = presets::tiny_test_model();
        let budget = cfg.expert_bytes() * slots_per_gpu * u64::from(gpus);
        ExpertCache::new(&cfg, budget, gpus, Box::new(LruPolicy::new()))
    }

    fn e(l: u32, s: u32) -> ExpertId {
        ExpertId::new(l, s)
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = tiny_cache(2, 1);
        assert!(!c.contains(e(0, 0)));
        assert_eq!(
            c.insert(e(0, 0), 1),
            InsertOutcome::Inserted { evicted: vec![] }
        );
        assert!(c.contains(e(0, 0)));
        assert_eq!(c.insert(e(0, 0), 2), InsertOutcome::AlreadyResident);
        assert_eq!(c.resident_count(), 1);
    }

    #[test]
    fn eviction_respects_budget() {
        let mut c = tiny_cache(2, 1);
        c.insert(e(0, 0), 1);
        c.insert(e(0, 1), 2);
        let out = c.insert(e(0, 2), 3);
        // LRU: e(0,0) is the oldest.
        assert_eq!(
            out,
            InsertOutcome::Inserted {
                evicted: vec![e(0, 0)]
            }
        );
        assert_eq!(c.resident_count(), 2);
        assert!(c.total_used_bytes() <= c.per_gpu_budget());
    }

    #[test]
    fn round_robin_home_gpu_spreads_load() {
        let c = tiny_cache(2, 2);
        // Dense indices 0..: gpu = idx % 2.
        assert_eq!(c.home_gpu(e(0, 0)), 0);
        assert_eq!(c.home_gpu(e(0, 1)), 1);
        assert_eq!(c.home_gpu(e(0, 2)), 0);
    }

    #[test]
    fn per_gpu_budgets_are_independent() {
        let mut c = tiny_cache(1, 2);
        // Both of these live on different GPUs: no eviction needed.
        c.insert(e(0, 0), 1);
        c.insert(e(0, 1), 2);
        assert_eq!(c.resident_count(), 2);
        // A second expert on GPU 0 evicts the first.
        let out = c.insert(e(0, 2), 3);
        assert_eq!(
            out,
            InsertOutcome::Inserted {
                evicted: vec![e(0, 0)]
            }
        );
    }

    #[test]
    fn pinned_experts_survive_eviction() {
        let mut c = tiny_cache(2, 1);
        c.insert(e(0, 0), 1);
        c.insert(e(0, 1), 2);
        assert!(c.pin(e(0, 0)));
        let out = c.insert(e(0, 2), 3);
        // LRU would pick e(0,0), but it is pinned: e(0,1) goes instead.
        assert_eq!(
            out,
            InsertOutcome::Inserted {
                evicted: vec![e(0, 1)]
            }
        );
        assert!(c.contains(e(0, 0)));
    }

    #[test]
    fn fully_pinned_gpu_rejects_inserts() {
        let mut c = tiny_cache(1, 1);
        c.insert(e(0, 0), 1);
        c.pin(e(0, 0));
        assert_eq!(c.insert(e(0, 1), 2), InsertOutcome::Rejected);
        assert_eq!(c.stats().rejected_inserts, 1);
        c.unpin_all();
        assert!(matches!(
            c.insert(e(0, 1), 3),
            InsertOutcome::Inserted { .. }
        ));
    }

    #[test]
    fn oversized_expert_is_rejected() {
        let cfg = presets::tiny_test_model();
        // Budget below one expert.
        let mut c = ExpertCache::new(&cfg, cfg.expert_bytes() - 1, 1, Box::new(LruPolicy::new()));
        assert_eq!(c.insert(e(0, 0), 0), InsertOutcome::Rejected);
    }

    #[test]
    fn access_recording_tracks_hit_rate() {
        let mut c = tiny_cache(2, 1);
        c.insert(e(0, 0), 0);
        assert!(c.record_access(e(0, 0), 1));
        assert!(!c.record_access(e(0, 1), 2));
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lfu_cache_keeps_hot_experts() {
        let cfg = presets::tiny_test_model();
        let budget = cfg.expert_bytes() * 2;
        let mut c = ExpertCache::new(&cfg, budget, 1, Box::new(LfuPolicy::new()));
        c.insert(e(0, 0), 0);
        c.insert(e(0, 1), 0);
        for t in 0..5 {
            c.record_access(e(0, 0), t);
        }
        let out = c.insert(e(0, 2), 9);
        assert_eq!(
            out,
            InsertOutcome::Inserted {
                evicted: vec![e(0, 1)]
            }
        );
        assert!(c.contains(e(0, 0)));
    }

    #[test]
    fn fmoe_priority_cache_uses_probabilities() {
        let cfg = presets::tiny_test_model();
        let budget = cfg.expert_bytes() * 2;
        let mut c = ExpertCache::new(&cfg, budget, 1, Box::new(FmoePriorityPolicy::new()));
        c.insert(e(0, 0), 0);
        c.insert(e(0, 1), 0);
        c.update_probability(e(0, 0), 0.9);
        c.update_probability(e(0, 1), 0.01);
        let out = c.insert(e(0, 2), 1);
        assert_eq!(
            out,
            InsertOutcome::Inserted {
                evicted: vec![e(0, 1)]
            }
        );
    }

    #[test]
    fn remove_frees_bytes_and_pins() {
        let mut c = tiny_cache(1, 1);
        c.insert(e(0, 0), 0);
        c.pin(e(0, 0));
        assert!(c.remove(e(0, 0)));
        assert!(!c.remove(e(0, 0)));
        assert_eq!(c.total_used_bytes(), 0);
        // The pin must be gone too.
        c.insert(e(0, 1), 1);
        assert!(matches!(
            c.insert(e(0, 2), 2),
            InsertOutcome::Inserted { .. }
        ));
    }

    #[test]
    fn clear_resets_residency() {
        let mut c = tiny_cache(2, 1);
        c.insert(e(0, 0), 0);
        c.record_access(e(0, 0), 1);
        c.clear(true);
        assert_eq!(c.resident_count(), 0);
        assert_eq!(c.total_used_bytes(), 0);
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn slots_per_gpu_matches_budget() {
        let c = tiny_cache(3, 2);
        assert_eq!(c.slots_per_gpu(), 3);
    }

    #[test]
    fn pin_nonresident_returns_false() {
        let mut c = tiny_cache(1, 1);
        assert!(!c.pin(e(0, 0)));
    }

    #[test]
    fn layer_contiguous_placement_groups_layers() {
        let cfg = presets::tiny_test_model(); // 4 layers x 4 experts
        let c = ExpertCache::new(&cfg, cfg.expert_bytes() * 16, 2, Box::new(LruPolicy::new()))
            .with_placement(Placement::LayerContiguous);
        // Layers 0..2 on GPU 0, layers 2..4 on GPU 1.
        assert_eq!(c.home_gpu(e(0, 0)), 0);
        assert_eq!(c.home_gpu(e(0, 3)), 0);
        assert_eq!(c.home_gpu(e(1, 2)), 0);
        assert_eq!(c.home_gpu(e(2, 0)), 1);
        assert_eq!(c.home_gpu(e(3, 3)), 1);
        // Round-robin spreads within a layer instead.
        let rr = ExpertCache::new(&cfg, cfg.expert_bytes() * 16, 2, Box::new(LruPolicy::new()));
        assert_ne!(rr.home_gpu(e(0, 0)), rr.home_gpu(e(0, 1)));
    }

    #[test]
    fn shrinking_budget_evicts_to_fit() {
        let cfg = presets::tiny_test_model();
        let mut c = tiny_cache(4, 1);
        for s in 0..4 {
            c.insert(e(0, s), u64::from(s));
        }
        assert_eq!(c.resident_count(), 4);
        let evicted = c.set_total_budget(cfg.expert_bytes() * 2);
        assert_eq!(evicted.len(), 2);
        assert_eq!(c.resident_count(), 2);
        assert!(c.total_used_bytes() <= c.per_gpu_budget());
        // LRU: the oldest two went first.
        assert_eq!(evicted, vec![e(0, 0), e(0, 1)]);
    }

    #[test]
    fn growing_budget_evicts_nothing_and_allows_more() {
        let cfg = presets::tiny_test_model();
        let mut c = tiny_cache(1, 1);
        c.insert(e(0, 0), 0);
        assert!(c.set_total_budget(cfg.expert_bytes() * 3).is_empty());
        assert!(
            matches!(c.insert(e(0, 1), 1), InsertOutcome::Inserted { evicted } if evicted.is_empty())
        );
        assert!(
            matches!(c.insert(e(0, 2), 2), InsertOutcome::Inserted { evicted } if evicted.is_empty())
        );
        assert_eq!(c.resident_count(), 3);
    }

    #[test]
    fn trace_sink_sees_inserts_evictions_and_budget_retunes() {
        let cfg = presets::tiny_test_model();
        let sink = fmoe_trace::TraceSink::recording(256);
        let mut c = tiny_cache(2, 1);
        c.set_trace_sink(sink.clone());
        c.insert(e(0, 0), 10);
        c.insert(e(0, 1), 20);
        c.record_access(e(0, 0), 30);
        c.record_access(e(1, 0), 31);
        // Third insert evicts, then a budget shrink evicts again.
        c.insert(e(0, 2), 40);
        let evicted = c.set_total_budget(cfg.expert_bytes());
        assert_eq!(evicted.len(), 1);
        let records = sink.take_records();
        let count = |m: fmoe_trace::Marker| {
            records
                .iter()
                .filter(
                    |r| matches!(r.event, fmoe_trace::TraceEvent::Instant { marker, .. } if marker == m),
                )
                .count()
        };
        assert_eq!(count(fmoe_trace::Marker::CacheInsert), 3);
        assert_eq!(count(fmoe_trace::Marker::CacheEvict), 2);
        // Budget-retune evictions are stamped at the last observed time.
        assert!(records.iter().all(|r| r.at_ns <= 40));
        let m = sink.metrics_snapshot();
        assert_eq!(m.counter("cache.hits"), 1);
        assert_eq!(m.counter("cache.misses"), 1);
        assert_eq!(m.counter("cache.insertions"), 3);
        assert_eq!(m.counter("cache.evictions"), 2);
        assert_eq!(
            m.gauge("cache.per_gpu_budget_bytes"),
            Some(cfg.expert_bytes())
        );
    }

    #[test]
    fn shrinking_budget_respects_pins() {
        let cfg = presets::tiny_test_model();
        let mut c = tiny_cache(3, 1);
        for s in 0..3 {
            c.insert(e(0, s), u64::from(s));
            c.pin(e(0, s));
        }
        // Nothing evictable: budget shrinks but residents stay until
        // unpinned.
        let evicted = c.set_total_budget(cfg.expert_bytes());
        assert!(evicted.is_empty());
        assert_eq!(c.resident_count(), 3);
        c.unpin_all();
        // The next insert now triggers evictions down to the new budget.
        let out = c.insert(e(1, 0), 9);
        assert!(matches!(out, InsertOutcome::Inserted { .. }));
        assert!(c.total_used_bytes() <= c.per_gpu_budget());
    }
}
