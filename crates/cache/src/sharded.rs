//! N-way sharded concurrent expert cache.
//!
//! The single-threaded [`ExpertCache`](crate::ExpertCache) is the
//! simulation-path structure: deterministic, lock-free, byte-stable. A
//! multi-replica host, though, wants one *shared* host-side cache view
//! that many replica threads can update concurrently without serializing
//! on a single lock. [`ShardedExpertCache`] provides that: experts are
//! partitioned over N independent shards by dense index, each shard is a
//! full `ExpertCache` behind its own `Mutex`, and fleet-wide statistics
//! are the field-wise [`CacheStats::merged`] sum of the per-shard stats.
//!
//! Properties worth stating:
//!
//! * **Sharding is by identity, not by recency** — an expert always maps
//!   to the same shard (`dense_index % num_shards`), so per-expert
//!   operations from any number of threads are linearized by exactly one
//!   shard lock and two threads touching different shards never contend.
//! * **Determinism is per-shard.** Operations on one shard apply in that
//!   shard's lock order; because shards are disjoint by expert, any
//!   thread interleaving in which each expert's own operation sequence
//!   is preserved yields the same final residency and the same per-shard
//!   stats as a sequential replay. The deterministic concurrency suite
//!   (`crates/cache/tests/sharded_concurrency.rs`) pins this.
//! * **Poisoned locks recover.** The cache is bookkeeping, not critical
//!   state; a panicking peer thread must not wedge serving, so locks are
//!   taken with `PoisonError::into_inner`.

use crate::cache::{ExpertCache, InsertOutcome};
use crate::policy::PolicyKind;
use crate::stats::CacheStats;
use fmoe_model::{ExpertId, ModelConfig};
use fmoe_trace::{shard_metric, MetricsRegistry};
use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock(shard: &Mutex<ExpertCache>) -> MutexGuard<'_, ExpertCache> {
    shard.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One shard's occupancy snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct ShardOccupancy {
    /// Shard index.
    pub shard: usize,
    /// Experts resident in this shard.
    pub residents: usize,
    /// Bytes used in this shard.
    pub used_bytes: u64,
    /// This shard's byte budget.
    pub budget_bytes: u64,
}

/// A concurrent expert cache sharded N ways by expert identity.
///
/// ```
/// use fmoe_cache::{PolicyKind, ShardedExpertCache};
/// use fmoe_model::{presets, ExpertId};
///
/// let model = presets::tiny_test_model();
/// let cache = ShardedExpertCache::new(
///     &model,
///     model.expert_bytes() * 8,
///     4,
///     PolicyKind::Sieve,
/// );
/// let e = ExpertId::new(0, 1);
/// assert!(!cache.record_access(e, 1));
/// cache.insert(e, 2);
/// assert!(cache.record_access(e, 3));
/// let stats = cache.stats();
/// assert_eq!(stats.hits + stats.misses, stats.lookups);
/// ```
#[derive(Debug)]
pub struct ShardedExpertCache {
    shards: Vec<Mutex<ExpertCache>>,
    experts_per_layer: u32,
}

impl ShardedExpertCache {
    /// Builds `num_shards` independent shards, each holding a slice of
    /// the total byte budget and its own freshly-built eviction policy
    /// of `kind`. The budget splits as evenly as integer bytes allow:
    /// every shard gets `total / n`, and the `total % n` remainder bytes
    /// go one each to the lowest-index shards, so
    /// `sum(shard budgets) == total` exactly — no fleet bytes are
    /// silently dropped — and the split is deterministic in the shard
    /// index alone.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0`.
    #[must_use]
    pub fn new(
        config: &ModelConfig,
        total_budget_bytes: u64,
        num_shards: usize,
        kind: PolicyKind,
    ) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        let base = total_budget_bytes / num_shards as u64;
        let remainder = total_budget_bytes % num_shards as u64;
        let shards = (0..num_shards)
            .map(|i| {
                let budget = base + u64::from((i as u64) < remainder);
                Mutex::new(ExpertCache::new(config, budget, 1, kind.build()))
            })
            .collect();
        Self {
            shards,
            experts_per_layer: config.experts_per_layer,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard an expert maps to: `dense_index % num_shards`. Stable
    /// for the cache's lifetime.
    #[must_use]
    pub fn shard_of(&self, expert: ExpertId) -> usize {
        expert.dense_index(self.experts_per_layer) % self.shards.len()
    }

    /// Records an access on the owning shard. Returns whether it hit.
    pub fn record_access(&self, expert: ExpertId, now: u64) -> bool {
        lock(&self.shards[self.shard_of(expert)]).record_access(expert, now)
    }

    /// Inserts a full-precision expert into its owning shard.
    pub fn insert(&self, expert: ExpertId, now: u64) -> InsertOutcome {
        lock(&self.shards[self.shard_of(expert)]).insert(expert, now)
    }

    /// Whether `expert` is resident in its shard.
    #[must_use]
    pub fn contains(&self, expert: ExpertId) -> bool {
        lock(&self.shards[self.shard_of(expert)]).contains(expert)
    }

    /// Removes `expert` from its shard; `true` if it was resident.
    pub fn remove(&self, expert: ExpertId) -> bool {
        lock(&self.shards[self.shard_of(expert)]).remove(expert)
    }

    /// Total residents across shards.
    #[must_use]
    pub fn resident_count(&self) -> usize {
        self.shards.iter().map(|s| lock(s).resident_count()).sum()
    }

    /// One shard's statistics snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()`.
    #[must_use]
    pub fn shard_stats(&self, shard: usize) -> CacheStats {
        lock(&self.shards[shard]).stats()
    }

    /// Fleet-wide statistics: the field-wise merge of every shard's
    /// stats, in shard order. The lookup identity `hits + misses ==
    /// lookups` holds per shard and therefore (linearity) here too.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.shards
            .iter()
            .fold(CacheStats::default(), |acc, s| acc.merged(&lock(s).stats()))
    }

    /// Per-shard occupancy, in shard order.
    #[must_use]
    pub fn occupancy(&self) -> Vec<ShardOccupancy> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let shard = lock(s);
                ShardOccupancy {
                    shard: i,
                    residents: shard.resident_count(),
                    used_bytes: shard.used_bytes(0),
                    budget_bytes: shard.per_gpu_budget(),
                }
            })
            .collect()
    }

    /// Sorted list of every resident expert across shards (expert-id
    /// order, shard-independent), for comparing a concurrent run's final
    /// state against a sequential replay.
    #[must_use]
    pub fn resident_experts_sorted(&self) -> Vec<ExpertId> {
        let mut all: Vec<ExpertId> = self
            .shards
            .iter()
            .flat_map(|s| lock(s).resident_experts().collect::<Vec<_>>())
            .collect();
        all.sort_unstable();
        all
    }

    /// Exports per-shard hit/miss/lookup counters and occupancy gauges
    /// into `registry` under `{base}.shardNN.{field}` names (see
    /// [`shard_metric`]), deterministically ordered by shard.
    pub fn export_metrics(&self, base: &str, registry: &mut MetricsRegistry) {
        for (i, s) in self.shards.iter().enumerate() {
            let shard = lock(s);
            let stats = shard.stats();
            registry.add(&shard_metric(base, i, "hits"), stats.hits);
            registry.add(&shard_metric(base, i, "misses"), stats.misses);
            registry.add(&shard_metric(base, i, "lookups"), stats.lookups);
            registry.add(&shard_metric(base, i, "evictions"), stats.evictions);
            registry.set_gauge(
                &shard_metric(base, i, "residents"),
                shard.resident_count() as u64,
            );
            registry.set_gauge(&shard_metric(base, i, "used_bytes"), shard.used_bytes(0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmoe_model::presets;

    fn expert(i: usize) -> ExpertId {
        ExpertId::from_dense_index(i % 16, 4)
    }

    #[test]
    fn sharded_cache_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedExpertCache>();
    }

    #[test]
    fn experts_route_to_stable_disjoint_shards() {
        let model = presets::tiny_test_model();
        let cache = ShardedExpertCache::new(&model, model.expert_bytes() * 8, 4, PolicyKind::Lru);
        for i in 0..16 {
            let e = expert(i);
            assert_eq!(cache.shard_of(e), i % 4);
            assert_eq!(cache.shard_of(e), cache.shard_of(e), "stable");
        }
    }

    #[test]
    fn merged_stats_equal_shard_sum_and_hold_invariant() {
        let model = presets::tiny_test_model();
        let cache = ShardedExpertCache::new(&model, model.expert_bytes() * 8, 4, PolicyKind::Fifo);
        for i in 0..16 {
            cache.record_access(expert(i), i as u64); // all miss
            cache.insert(expert(i), i as u64);
        }
        for i in 0..8 {
            cache.record_access(expert(i), 100 + i as u64);
        }
        let merged = cache.stats();
        let mut manual = CacheStats::default();
        for s in 0..cache.shard_count() {
            assert!(cache.shard_stats(s).check_invariants());
            manual = manual.merged(&cache.shard_stats(s));
        }
        assert_eq!(merged, manual);
        assert!(merged.check_invariants());
        assert_eq!(merged.lookups, 24);
        // Each shard holds 2 of its 4 experts; FIFO evicts the two
        // oldest (dense 0..8), so the 8 re-accesses all miss.
        assert_eq!(merged.misses, 24);
        assert_eq!(merged.hits, 0);
    }

    #[test]
    fn occupancy_reports_budget_and_usage_per_shard() {
        let model = presets::tiny_test_model();
        let total = model.expert_bytes() * 8;
        let cache = ShardedExpertCache::new(&model, total, 4, PolicyKind::Sieve);
        for i in 0..4 {
            cache.insert(expert(i), i as u64);
        }
        let occ = cache.occupancy();
        assert_eq!(occ.len(), 4);
        for (i, o) in occ.iter().enumerate() {
            assert_eq!(o.shard, i);
            assert_eq!(o.residents, 1);
            assert_eq!(o.used_bytes, model.expert_bytes());
            assert_eq!(o.budget_bytes, total / 4);
        }
        assert_eq!(cache.resident_count(), 4);
    }

    #[test]
    fn export_metrics_uses_shard_scoped_names() {
        let model = presets::tiny_test_model();
        let cache = ShardedExpertCache::new(&model, model.expert_bytes() * 8, 2, PolicyKind::Lru);
        cache.record_access(expert(0), 1);
        cache.insert(expert(0), 1);
        cache.record_access(expert(0), 2);
        let mut reg = MetricsRegistry::new();
        cache.export_metrics("host_cache", &mut reg);
        assert_eq!(reg.counter("host_cache.shard00.lookups"), 2);
        assert_eq!(reg.counter("host_cache.shard00.hits"), 1);
        assert_eq!(reg.counter("host_cache.shard00.misses"), 1);
        assert_eq!(reg.counter("host_cache.shard01.lookups"), 0);
        assert_eq!(reg.gauge("host_cache.shard00.residents"), Some(1));
    }

    #[test]
    fn removal_clears_residency_through_the_shard() {
        let model = presets::tiny_test_model();
        let cache = ShardedExpertCache::new(&model, model.expert_bytes() * 8, 4, PolicyKind::Lru);
        cache.insert(expert(3), 1);
        assert!(cache.contains(expert(3)));
        assert!(cache.remove(expert(3)));
        assert!(!cache.contains(expert(3)));
        assert!(!cache.remove(expert(3)), "double remove is false");
    }
}
