//! Eviction policies.
//!
//! The policy owns whatever per-expert bookkeeping it needs (recency
//! stamps, frequencies, probabilities) and answers one question: *given
//! these eviction candidates, who goes first?*
//!
//! A deliberate design note from the paper (§4.5): LRU is a poor fit for
//! expert offloading because expert usage is layer-sequential — the most
//! recently used expert is the one whose layer just executed, i.e. the one
//! needed *furthest* in the future. The evaluation (Fig. 12b) confirms
//! LRU < LFU < fMoE's joint priority; the unit tests here encode the
//! mechanics that produce that ordering.

use fmoe_model::ExpertId;
use std::collections::{BTreeMap, BTreeSet};

/// Chooses eviction victims among resident experts.
pub trait EvictionPolicy: std::fmt::Debug + Send {
    /// Stable policy name for reports.
    fn name(&self) -> &'static str;

    /// Called when `expert` becomes resident. `now` is a monotone counter.
    fn on_insert(&mut self, expert: ExpertId, now: u64);

    /// Called on every cache hit of `expert`.
    fn on_hit(&mut self, expert: ExpertId, now: u64);

    /// Called when `expert` leaves the cache (evicted or explicitly
    /// removed).
    fn on_remove(&mut self, expert: ExpertId);

    /// Picks the next victim among `candidates` (all currently resident,
    /// none pinned). Returns `None` only when `candidates` is empty.
    fn choose_victim(&self, candidates: &[ExpertId]) -> Option<ExpertId>;

    /// Updates the policy's belief about the activation probability of an
    /// expert (from a searched expert map). Default: ignored — only
    /// probability-aware policies care.
    fn update_probability(&mut self, _expert: ExpertId, _probability: f64) {}

    /// Called at each iteration boundary. Probability beliefs come from
    /// the *current* iteration's searched maps; the next iteration routes
    /// differently, so probability-aware policies drop them here.
    fn on_iteration_boundary(&mut self) {}

    /// Called when layer `layer` finishes executing. A searched-map
    /// probability is a forecast for a specific upcoming layer; once that
    /// layer has run, the forecast is expired and must not keep
    /// influencing eviction. Default: ignored.
    fn expire_layer(&mut self, _layer: u32) {}

    /// Clears all accumulated bookkeeping (used between experiments).
    fn reset(&mut self);
}

/// Least-recently-used eviction (Mixtral-Offloading's cache).
#[derive(Debug, Default)]
pub struct LruPolicy {
    last_used: BTreeMap<ExpertId, u64>,
}

impl LruPolicy {
    /// Creates an empty LRU policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl EvictionPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn on_insert(&mut self, expert: ExpertId, now: u64) {
        self.last_used.insert(expert, now);
    }

    fn on_hit(&mut self, expert: ExpertId, now: u64) {
        self.last_used.insert(expert, now);
    }

    fn on_remove(&mut self, expert: ExpertId) {
        self.last_used.remove(&expert);
    }

    fn choose_victim(&self, candidates: &[ExpertId]) -> Option<ExpertId> {
        candidates
            .iter()
            .min_by_key(|e| (self.last_used.get(e).copied().unwrap_or(0), **e))
            .copied()
    }

    fn reset(&mut self) {
        self.last_used.clear();
    }
}

/// Least-frequently-used eviction (MoE-Infinity's cache).
///
/// Two counting granularities:
///
/// * [`LfuPolicy::new`] — idealized per-access counting (every hit
///   increments), a stronger variant than any shipped system;
/// * [`LfuPolicy::coarse`] — MoE-Infinity-faithful counting: an expert is
///   credited at most once per iteration, mirroring the aggregated
///   activation counts its Expert Activation Matrix stores. This is the
///   "LFU" of the paper's Fig. 12b.
#[derive(Debug, Default)]
pub struct LfuPolicy {
    freq: BTreeMap<ExpertId, u64>,
    /// When `true`, hits are deduplicated within an iteration.
    coarse: bool,
    seen_this_iteration: BTreeSet<ExpertId>,
}

impl LfuPolicy {
    /// Creates an idealized per-access LFU policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the MoE-Infinity-faithful coarse-counting LFU policy.
    #[must_use]
    pub fn coarse() -> Self {
        Self {
            coarse: true,
            ..Self::default()
        }
    }
}

impl EvictionPolicy for LfuPolicy {
    fn name(&self) -> &'static str {
        if self.coarse {
            "LFU (coarse)"
        } else {
            "LFU"
        }
    }

    fn on_insert(&mut self, expert: ExpertId, _now: u64) {
        self.freq.entry(expert).or_insert(0);
    }

    fn on_hit(&mut self, expert: ExpertId, _now: u64) {
        if self.coarse && !self.seen_this_iteration.insert(expert) {
            return;
        }
        *self.freq.entry(expert).or_insert(0) += 1;
    }

    fn on_remove(&mut self, expert: ExpertId) {
        // Frequency history survives eviction, matching MoE-Infinity's
        // request-level counting (an expert that was hot stays credible).
        let _ = expert;
    }

    fn choose_victim(&self, candidates: &[ExpertId]) -> Option<ExpertId> {
        candidates
            .iter()
            .min_by_key(|e| (self.freq.get(e).copied().unwrap_or(0), **e))
            .copied()
    }

    fn on_iteration_boundary(&mut self) {
        self.seen_this_iteration.clear();
    }

    fn reset(&mut self) {
        self.freq.clear();
        self.seen_this_iteration.clear();
    }
}

/// fMoE's joint eviction priority `PRI^evict_{l,j} = 1 / (p_{l,j} · freq_{l,j})`
/// (paper §4.5): evict the expert with the highest priority, i.e. the
/// smallest `p · freq`.
///
/// `p` comes from the currently searched expert map via
/// [`EvictionPolicy::update_probability`]; `freq` is the cache visit count.
/// Experts the searched map considers unlikely *and* that are rarely hit go
/// first.
#[derive(Debug)]
pub struct FmoePriorityPolicy {
    freq: BTreeMap<ExpertId, u64>,
    probability: BTreeMap<ExpertId, f64>,
    /// Floor applied to *known* probabilities so a zero never makes an
    /// expert infinitely evictable.
    probability_floor: f64,
    /// Neutral prior used for experts no searched map has spoken about
    /// this iteration. Should sit between a searched map's "unlikely" and
    /// "likely" values — `1/J` is the natural choice.
    neutral_probability: f64,
}

impl Default for FmoePriorityPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl FmoePriorityPolicy {
    /// Creates the policy with a generic neutral prior; prefer
    /// [`Self::with_neutral_probability`] with `1/J` for a real model.
    #[must_use]
    pub fn new() -> Self {
        Self {
            freq: BTreeMap::new(),
            probability: BTreeMap::new(),
            probability_floor: 1e-3,
            neutral_probability: 0.05,
        }
    }

    /// Sets the unknown-expert prior (use `1/J`).
    #[must_use]
    pub fn with_neutral_probability(mut self, p: f64) -> Self {
        self.neutral_probability = p.clamp(1e-6, 1.0);
        self
    }

    fn score(&self, expert: ExpertId) -> f64 {
        let p = self
            .probability
            .get(&expert)
            .copied()
            .map_or(self.neutral_probability, |p| p.max(self.probability_floor));
        // freq starts at 1 so a just-inserted expert is comparable.
        let f = self.freq.get(&expert).copied().unwrap_or(0) + 1;
        p * f as f64
    }
}

impl EvictionPolicy for FmoePriorityPolicy {
    fn name(&self) -> &'static str {
        "fMoE"
    }

    fn on_insert(&mut self, expert: ExpertId, _now: u64) {
        self.freq.entry(expert).or_insert(0);
    }

    fn on_hit(&mut self, expert: ExpertId, _now: u64) {
        *self.freq.entry(expert).or_insert(0) += 1;
    }

    fn on_remove(&mut self, _expert: ExpertId) {}

    fn choose_victim(&self, candidates: &[ExpertId]) -> Option<ExpertId> {
        candidates
            .iter()
            .min_by(|a, b| self.score(**a).total_cmp(&self.score(**b)).then(a.cmp(b)))
            .copied()
    }

    fn update_probability(&mut self, expert: ExpertId, probability: f64) {
        self.probability.insert(expert, probability.clamp(0.0, 1.0));
    }

    fn on_iteration_boundary(&mut self) {
        // Searched-map probabilities describe the finished iteration's
        // trajectory; the next one routes elsewhere. Frequencies persist.
        self.probability.clear();
    }

    fn expire_layer(&mut self, layer: u32) {
        self.probability.retain(|e, _| e.layer != layer);
    }

    fn reset(&mut self) {
        self.freq.clear();
        self.probability.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(l: u32, s: u32) -> ExpertId {
        ExpertId::new(l, s)
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = LruPolicy::new();
        p.on_insert(e(0, 0), 1);
        p.on_insert(e(0, 1), 2);
        p.on_hit(e(0, 0), 3);
        assert_eq!(p.choose_victim(&[e(0, 0), e(0, 1)]), Some(e(0, 1)));
    }

    #[test]
    fn lru_forgets_removed_experts() {
        let mut p = LruPolicy::new();
        p.on_insert(e(0, 0), 5);
        p.on_remove(e(0, 0));
        p.on_insert(e(0, 0), 1);
        p.on_insert(e(0, 1), 9);
        assert_eq!(p.choose_victim(&[e(0, 0), e(0, 1)]), Some(e(0, 0)));
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut p = LfuPolicy::new();
        p.on_insert(e(0, 0), 0);
        p.on_insert(e(0, 1), 0);
        p.on_hit(e(0, 0), 1);
        p.on_hit(e(0, 0), 2);
        p.on_hit(e(0, 1), 3);
        assert_eq!(p.choose_victim(&[e(0, 0), e(0, 1)]), Some(e(0, 1)));
    }

    #[test]
    fn lfu_frequency_survives_eviction() {
        let mut p = LfuPolicy::new();
        p.on_insert(e(0, 0), 0);
        p.on_hit(e(0, 0), 1);
        p.on_remove(e(0, 0));
        p.on_insert(e(0, 0), 2);
        p.on_insert(e(0, 1), 2);
        p.on_hit(e(0, 1), 3);
        p.on_hit(e(0, 1), 4);
        // e(0,0) kept its old count of 1, e(0,1) has 2.
        assert_eq!(p.choose_victim(&[e(0, 0), e(0, 1)]), Some(e(0, 0)));
    }

    #[test]
    fn fmoe_priority_combines_probability_and_frequency() {
        let mut p = FmoePriorityPolicy::new();
        for slot in 0..3 {
            p.on_insert(e(0, slot), 0);
        }
        // Equal frequency; probabilities decide.
        p.update_probability(e(0, 0), 0.7);
        p.update_probability(e(0, 1), 0.1);
        p.update_probability(e(0, 2), 0.2);
        let all = [e(0, 0), e(0, 1), e(0, 2)];
        assert_eq!(p.choose_victim(&all), Some(e(0, 1)));
        // Now make the low-probability expert extremely hot: frequency
        // rescues it.
        for t in 0..100 {
            p.on_hit(e(0, 1), t);
        }
        assert_eq!(p.choose_victim(&all), Some(e(0, 2)));
    }

    #[test]
    fn fmoe_priority_handles_unknown_probability() {
        let mut p = FmoePriorityPolicy::new();
        p.on_insert(e(0, 0), 0);
        p.on_insert(e(0, 1), 0);
        p.update_probability(e(0, 0), 0.9);
        // e(0,1) has no probability info: it gets the floor and is evicted
        // first.
        assert_eq!(p.choose_victim(&[e(0, 0), e(0, 1)]), Some(e(0, 1)));
    }

    #[test]
    fn empty_candidates_yield_none() {
        let p = LruPolicy::new();
        assert_eq!(p.choose_victim(&[]), None);
        let p = LfuPolicy::new();
        assert_eq!(p.choose_victim(&[]), None);
        let p = FmoePriorityPolicy::new();
        assert_eq!(p.choose_victim(&[]), None);
    }

    #[test]
    fn reset_clears_state() {
        let mut p = FmoePriorityPolicy::new();
        p.on_insert(e(0, 0), 0);
        p.on_hit(e(0, 0), 1);
        p.update_probability(e(0, 0), 0.9);
        p.reset();
        p.on_insert(e(0, 1), 0);
        p.update_probability(e(0, 1), 0.5);
        // After reset, e(0,0)'s history is gone: floor prob, freq 1.
        assert_eq!(p.choose_victim(&[e(0, 0), e(0, 1)]), Some(e(0, 0)));
    }

    #[test]
    fn ties_break_deterministically() {
        let p = LruPolicy::new();
        // No bookkeeping at all: lowest ExpertId wins the tie.
        assert_eq!(p.choose_victim(&[e(1, 1), e(0, 3), e(2, 0)]), Some(e(0, 3)));
    }
}
