//! Eviction policies.
//!
//! The policy owns whatever per-expert bookkeeping it needs (recency
//! stamps, frequencies, probabilities) and answers one question: *given
//! these eviction candidates, who goes first?*
//!
//! A deliberate design note from the paper (§4.5): LRU is a poor fit for
//! expert offloading because expert usage is layer-sequential — the most
//! recently used expert is the one whose layer just executed, i.e. the one
//! needed *furthest* in the future. The evaluation (Fig. 12b) confirms
//! LRU < LFU < fMoE's joint priority; the unit tests here encode the
//! mechanics that produce that ordering.

use crate::arena::{LinkArena, NIL};
use fmoe_model::ExpertId;
use std::collections::{BTreeMap, BTreeSet};

/// Chooses eviction victims among resident experts.
pub trait EvictionPolicy: std::fmt::Debug + Send {
    /// Stable policy name for reports.
    fn name(&self) -> &'static str;

    /// Called when `expert` becomes resident. `now` is a monotone counter.
    fn on_insert(&mut self, expert: ExpertId, now: u64);

    /// Called on every cache hit of `expert`.
    fn on_hit(&mut self, expert: ExpertId, now: u64);

    /// Called when `expert` leaves the cache (evicted or explicitly
    /// removed).
    fn on_remove(&mut self, expert: ExpertId);

    /// Picks the next victim among `candidates` (all currently resident,
    /// none pinned). Returns `None` only when `candidates` is empty.
    fn choose_victim(&self, candidates: &[ExpertId]) -> Option<ExpertId>;

    /// [`Self::choose_victim`] with mutable access, for policies whose
    /// victim scan *itself* updates bookkeeping — SIEVE clears visited
    /// bits and advances its hand while scanning. The cache always calls
    /// this variant; the default delegates to the immutable scan, so
    /// stateless-scan policies (LRU/LFU/fMoE-priority) are untouched.
    fn choose_victim_mut(&mut self, candidates: &[ExpertId]) -> Option<ExpertId> {
        self.choose_victim(candidates)
    }

    /// Updates the policy's belief about the activation probability of an
    /// expert (from a searched expert map). Default: ignored — only
    /// probability-aware policies care.
    fn update_probability(&mut self, _expert: ExpertId, _probability: f64) {}

    /// Called at each iteration boundary. Probability beliefs come from
    /// the *current* iteration's searched maps; the next iteration routes
    /// differently, so probability-aware policies drop them here.
    fn on_iteration_boundary(&mut self) {}

    /// Called when layer `layer` finishes executing. A searched-map
    /// probability is a forecast for a specific upcoming layer; once that
    /// layer has run, the forecast is expired and must not keep
    /// influencing eviction. Default: ignored.
    fn expire_layer(&mut self, _layer: u32) {}

    /// Clears all accumulated bookkeeping (used between experiments).
    fn reset(&mut self);
}

/// Least-recently-used eviction (Mixtral-Offloading's cache).
#[derive(Debug, Default)]
pub struct LruPolicy {
    last_used: BTreeMap<ExpertId, u64>,
}

impl LruPolicy {
    /// Creates an empty LRU policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl EvictionPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn on_insert(&mut self, expert: ExpertId, now: u64) {
        self.last_used.insert(expert, now);
    }

    fn on_hit(&mut self, expert: ExpertId, now: u64) {
        self.last_used.insert(expert, now);
    }

    fn on_remove(&mut self, expert: ExpertId) {
        self.last_used.remove(&expert);
    }

    fn choose_victim(&self, candidates: &[ExpertId]) -> Option<ExpertId> {
        candidates
            .iter()
            .min_by_key(|e| (self.last_used.get(e).copied().unwrap_or(0), **e))
            .copied()
    }

    fn reset(&mut self) {
        self.last_used.clear();
    }
}

/// Least-frequently-used eviction (MoE-Infinity's cache).
///
/// Two counting granularities:
///
/// * [`LfuPolicy::new`] — idealized per-access counting (every hit
///   increments), a stronger variant than any shipped system;
/// * [`LfuPolicy::coarse`] — MoE-Infinity-faithful counting: an expert is
///   credited at most once per iteration, mirroring the aggregated
///   activation counts its Expert Activation Matrix stores. This is the
///   "LFU" of the paper's Fig. 12b.
#[derive(Debug, Default)]
pub struct LfuPolicy {
    freq: BTreeMap<ExpertId, u64>,
    /// When `true`, hits are deduplicated within an iteration.
    coarse: bool,
    seen_this_iteration: BTreeSet<ExpertId>,
}

impl LfuPolicy {
    /// Creates an idealized per-access LFU policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the MoE-Infinity-faithful coarse-counting LFU policy.
    #[must_use]
    pub fn coarse() -> Self {
        Self {
            coarse: true,
            ..Self::default()
        }
    }
}

impl EvictionPolicy for LfuPolicy {
    fn name(&self) -> &'static str {
        if self.coarse {
            "LFU (coarse)"
        } else {
            "LFU"
        }
    }

    fn on_insert(&mut self, expert: ExpertId, _now: u64) {
        self.freq.entry(expert).or_insert(0);
    }

    fn on_hit(&mut self, expert: ExpertId, _now: u64) {
        if self.coarse && !self.seen_this_iteration.insert(expert) {
            return;
        }
        *self.freq.entry(expert).or_insert(0) += 1;
    }

    fn on_remove(&mut self, expert: ExpertId) {
        // Frequency history survives eviction, matching MoE-Infinity's
        // request-level counting (an expert that was hot stays credible).
        let _ = expert;
    }

    fn choose_victim(&self, candidates: &[ExpertId]) -> Option<ExpertId> {
        candidates
            .iter()
            .min_by_key(|e| (self.freq.get(e).copied().unwrap_or(0), **e))
            .copied()
    }

    fn on_iteration_boundary(&mut self) {
        self.seen_this_iteration.clear();
    }

    fn reset(&mut self) {
        self.freq.clear();
        self.seen_this_iteration.clear();
    }
}

/// fMoE's joint eviction priority `PRI^evict_{l,j} = 1 / (p_{l,j} · freq_{l,j})`
/// (paper §4.5): evict the expert with the highest priority, i.e. the
/// smallest `p · freq`.
///
/// `p` comes from the currently searched expert map via
/// [`EvictionPolicy::update_probability`]; `freq` is the cache visit count.
/// Experts the searched map considers unlikely *and* that are rarely hit go
/// first.
#[derive(Debug)]
pub struct FmoePriorityPolicy {
    freq: BTreeMap<ExpertId, u64>,
    probability: BTreeMap<ExpertId, f64>,
    /// Floor applied to *known* probabilities so a zero never makes an
    /// expert infinitely evictable.
    probability_floor: f64,
    /// Neutral prior used for experts no searched map has spoken about
    /// this iteration. Should sit between a searched map's "unlikely" and
    /// "likely" values — `1/J` is the natural choice.
    neutral_probability: f64,
}

impl Default for FmoePriorityPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl FmoePriorityPolicy {
    /// Creates the policy with a generic neutral prior; prefer
    /// [`Self::with_neutral_probability`] with `1/J` for a real model.
    #[must_use]
    pub fn new() -> Self {
        Self {
            freq: BTreeMap::new(),
            probability: BTreeMap::new(),
            probability_floor: 1e-3,
            neutral_probability: 0.05,
        }
    }

    /// Sets the unknown-expert prior (use `1/J`).
    #[must_use]
    pub fn with_neutral_probability(mut self, p: f64) -> Self {
        self.neutral_probability = p.clamp(1e-6, 1.0);
        self
    }

    fn score(&self, expert: ExpertId) -> f64 {
        let p = self
            .probability
            .get(&expert)
            .copied()
            .map_or(self.neutral_probability, |p| p.max(self.probability_floor));
        // freq starts at 1 so a just-inserted expert is comparable.
        let f = self.freq.get(&expert).copied().unwrap_or(0) + 1;
        p * f as f64
    }
}

impl EvictionPolicy for FmoePriorityPolicy {
    fn name(&self) -> &'static str {
        "fMoE"
    }

    fn on_insert(&mut self, expert: ExpertId, _now: u64) {
        self.freq.entry(expert).or_insert(0);
    }

    fn on_hit(&mut self, expert: ExpertId, _now: u64) {
        *self.freq.entry(expert).or_insert(0) += 1;
    }

    fn on_remove(&mut self, _expert: ExpertId) {}

    fn choose_victim(&self, candidates: &[ExpertId]) -> Option<ExpertId> {
        candidates
            .iter()
            .min_by(|a, b| self.score(**a).total_cmp(&self.score(**b)).then(a.cmp(b)))
            .copied()
    }

    fn update_probability(&mut self, expert: ExpertId, probability: f64) {
        self.probability.insert(expert, probability.clamp(0.0, 1.0));
    }

    fn on_iteration_boundary(&mut self) {
        // Searched-map probabilities describe the finished iteration's
        // trajectory; the next one routes elsewhere. Frequencies persist.
        self.probability.clear();
    }

    fn expire_layer(&mut self, layer: u32) {
        self.probability.retain(|e, _| e.layer != layer);
    }

    fn reset(&mut self) {
        self.freq.clear();
        self.probability.clear();
    }
}

/// First-in-first-out eviction on the arena-allocated intrusive list:
/// hits do nothing, so the eviction order is pure insertion order. The
/// classic lower baseline for SIEVE (both keep a write-free hit path;
/// FIFO just never spares anything).
#[derive(Debug, Default)]
pub struct FifoPolicy {
    queue: LinkArena<ExpertId>,
    index: BTreeMap<ExpertId, u32>,
}

impl FifoPolicy {
    /// Creates an empty FIFO policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl EvictionPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn on_insert(&mut self, expert: ExpertId, _now: u64) {
        if !self.index.contains_key(&expert) {
            let idx = self.queue.push_head(expert);
            self.index.insert(expert, idx);
        }
    }

    fn on_hit(&mut self, _expert: ExpertId, _now: u64) {
        // FIFO's whole point: a hit is free and changes nothing.
    }

    fn on_remove(&mut self, expert: ExpertId) {
        if let Some(idx) = self.index.remove(&expert) {
            let _ = self.queue.remove(idx);
        }
    }

    fn choose_victim(&self, candidates: &[ExpertId]) -> Option<ExpertId> {
        for (_, expert) in self.queue.iter_oldest_first() {
            if candidates.contains(expert) {
                return Some(*expert);
            }
        }
        // Candidates the policy never saw an insert for (defensive):
        // deterministic fallback to the smallest id.
        candidates.iter().min().copied()
    }

    fn reset(&mut self) {
        self.queue.clear();
        self.index.clear();
    }
}

#[derive(Debug, Clone, Copy)]
struct SieveEntry {
    expert: ExpertId,
    visited: bool,
}

/// SIEVE eviction (NSDI '24) on the arena-allocated intrusive list.
///
/// New experts join at the head unvisited; a **hit is a single visited-
/// bit flip** — no move-to-front, no list mutation, which is what makes
/// SIEVE's hit path lock-friendly in the sharded concurrent cache. The
/// eviction *hand* sweeps from the tail (oldest) toward the head,
/// wrapping around: a visited entry survives (its bit is cleared and the
/// hand moves on), the first unvisited entry is the victim, and the hand
/// parks just past it for the next eviction.
///
/// Entries outside the candidate set (pinned, or resident on another
/// GPU) are skipped without touching their bits: they are not
/// examinable, so they keep whatever second chance they have.
#[derive(Debug, Default)]
pub struct SievePolicy {
    queue: LinkArena<SieveEntry>,
    index: BTreeMap<ExpertId, u32>,
    /// Arena index the next eviction scan starts from; [`NIL`] wraps to
    /// the tail.
    hand: u32,
}

impl SievePolicy {
    /// Creates an empty SIEVE policy.
    #[must_use]
    pub fn new() -> Self {
        Self {
            queue: LinkArena::new(),
            index: BTreeMap::new(),
            hand: NIL,
        }
    }

    /// Whether `expert`'s visited bit is currently set (test hook).
    #[must_use]
    pub fn is_visited(&self, expert: ExpertId) -> bool {
        self.index
            .get(&expert)
            .and_then(|&idx| self.queue.get(idx))
            .is_some_and(|e| e.visited)
    }

    /// One step of the hand walk: toward the head, wrapping to the tail.
    fn advance(&self, cur: u32) -> u32 {
        let next = self.queue.newer(cur);
        if next == NIL {
            self.queue.tail()
        } else {
            next
        }
    }
}

impl EvictionPolicy for SievePolicy {
    fn name(&self) -> &'static str {
        "SIEVE"
    }

    fn on_insert(&mut self, expert: ExpertId, _now: u64) {
        if !self.index.contains_key(&expert) {
            let idx = self.queue.push_head(SieveEntry {
                expert,
                visited: false,
            });
            self.index.insert(expert, idx);
        }
    }

    fn on_hit(&mut self, expert: ExpertId, _now: u64) {
        // The single-bit-flip hit path.
        if let Some(&idx) = self.index.get(&expert) {
            if let Some(entry) = self.queue.get_mut(idx) {
                entry.visited = true;
            }
        }
    }

    fn on_remove(&mut self, expert: ExpertId) {
        if let Some(idx) = self.index.remove(&expert) {
            if self.hand == idx {
                // Park the hand just past the removed node (toward the
                // head); NIL wraps to the tail on the next scan.
                self.hand = self.queue.newer(idx);
            }
            let _ = self.queue.remove(idx);
        }
    }

    fn choose_victim(&self, candidates: &[ExpertId]) -> Option<ExpertId> {
        // Pure preview of the mutable scan: simulate bit clears locally
        // so repeated calls (and the oracle-diff suite) see exactly the
        // victim `choose_victim_mut` would take, without advancing state.
        if candidates.is_empty() || self.queue.is_empty() {
            return candidates.iter().min().copied();
        }
        let mut cleared: BTreeSet<u32> = BTreeSet::new();
        let mut cur = if self.hand != NIL {
            self.hand
        } else {
            self.queue.tail()
        };
        let max_steps = 2 * self.queue.len() + 1;
        for _ in 0..max_steps {
            if cur == NIL {
                break;
            }
            if let Some(entry) = self.queue.get(cur) {
                if candidates.contains(&entry.expert) {
                    if entry.visited && !cleared.contains(&cur) {
                        cleared.insert(cur);
                    } else {
                        return Some(entry.expert);
                    }
                }
            }
            cur = self.advance(cur);
        }
        candidates.iter().min().copied()
    }

    fn choose_victim_mut(&mut self, candidates: &[ExpertId]) -> Option<ExpertId> {
        if candidates.is_empty() || self.queue.is_empty() {
            return candidates.iter().min().copied();
        }
        let mut cur = if self.hand != NIL {
            self.hand
        } else {
            self.queue.tail()
        };
        // One lap clears every visited candidate bit; the second lap must
        // then find an unvisited candidate, so 2·len+1 steps bound the
        // walk even under heavy pinning.
        let max_steps = 2 * self.queue.len() + 1;
        for _ in 0..max_steps {
            if cur == NIL {
                break;
            }
            let examined = self
                .queue
                .get(cur)
                .filter(|e| candidates.contains(&e.expert))
                .map(|e| (e.expert, e.visited));
            if let Some((expert, visited)) = examined {
                if visited {
                    if let Some(entry) = self.queue.get_mut(cur) {
                        entry.visited = false;
                    }
                } else {
                    self.hand = self.queue.newer(cur);
                    return Some(expert);
                }
            }
            cur = self.advance(cur);
        }
        candidates.iter().min().copied()
    }

    fn reset(&mut self) {
        self.queue.clear();
        self.index.clear();
        self.hand = NIL;
    }
}

/// A nameable eviction-policy choice: the closed catalog of shipped
/// policies, so builders, benches, and the sharded cache's per-shard
/// factories can carry a `Copy` value instead of a `Box<dyn ..>`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// [`LruPolicy`].
    Lru,
    /// [`LfuPolicy::new`] (idealized per-access counting).
    Lfu,
    /// [`LfuPolicy::coarse`] (MoE-Infinity-faithful counting).
    LfuCoarse,
    /// [`FmoePriorityPolicy`] with the given neutral prior (use `1/J`).
    FmoePriority {
        /// Prior for experts no searched map has spoken about.
        neutral_probability: f64,
    },
    /// [`SievePolicy`].
    Sieve,
    /// [`FifoPolicy`].
    Fifo,
}

impl PolicyKind {
    /// Builds a fresh policy instance of this kind.
    #[must_use]
    pub fn build(self) -> Box<dyn EvictionPolicy> {
        match self {
            PolicyKind::Lru => Box::new(LruPolicy::new()),
            PolicyKind::Lfu => Box::new(LfuPolicy::new()),
            PolicyKind::LfuCoarse => Box::new(LfuPolicy::coarse()),
            PolicyKind::FmoePriority {
                neutral_probability,
            } => Box::new(FmoePriorityPolicy::new().with_neutral_probability(neutral_probability)),
            PolicyKind::Sieve => Box::new(SievePolicy::new()),
            PolicyKind::Fifo => Box::new(FifoPolicy::new()),
        }
    }

    /// The display name the built policy reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Lfu => "LFU",
            PolicyKind::LfuCoarse => "LFU (coarse)",
            PolicyKind::FmoePriority { .. } => "fMoE",
            PolicyKind::Sieve => "SIEVE",
            PolicyKind::Fifo => "FIFO",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(l: u32, s: u32) -> ExpertId {
        ExpertId::new(l, s)
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = LruPolicy::new();
        p.on_insert(e(0, 0), 1);
        p.on_insert(e(0, 1), 2);
        p.on_hit(e(0, 0), 3);
        assert_eq!(p.choose_victim(&[e(0, 0), e(0, 1)]), Some(e(0, 1)));
    }

    #[test]
    fn lru_forgets_removed_experts() {
        let mut p = LruPolicy::new();
        p.on_insert(e(0, 0), 5);
        p.on_remove(e(0, 0));
        p.on_insert(e(0, 0), 1);
        p.on_insert(e(0, 1), 9);
        assert_eq!(p.choose_victim(&[e(0, 0), e(0, 1)]), Some(e(0, 0)));
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut p = LfuPolicy::new();
        p.on_insert(e(0, 0), 0);
        p.on_insert(e(0, 1), 0);
        p.on_hit(e(0, 0), 1);
        p.on_hit(e(0, 0), 2);
        p.on_hit(e(0, 1), 3);
        assert_eq!(p.choose_victim(&[e(0, 0), e(0, 1)]), Some(e(0, 1)));
    }

    #[test]
    fn lfu_frequency_survives_eviction() {
        let mut p = LfuPolicy::new();
        p.on_insert(e(0, 0), 0);
        p.on_hit(e(0, 0), 1);
        p.on_remove(e(0, 0));
        p.on_insert(e(0, 0), 2);
        p.on_insert(e(0, 1), 2);
        p.on_hit(e(0, 1), 3);
        p.on_hit(e(0, 1), 4);
        // e(0,0) kept its old count of 1, e(0,1) has 2.
        assert_eq!(p.choose_victim(&[e(0, 0), e(0, 1)]), Some(e(0, 0)));
    }

    #[test]
    fn fmoe_priority_combines_probability_and_frequency() {
        let mut p = FmoePriorityPolicy::new();
        for slot in 0..3 {
            p.on_insert(e(0, slot), 0);
        }
        // Equal frequency; probabilities decide.
        p.update_probability(e(0, 0), 0.7);
        p.update_probability(e(0, 1), 0.1);
        p.update_probability(e(0, 2), 0.2);
        let all = [e(0, 0), e(0, 1), e(0, 2)];
        assert_eq!(p.choose_victim(&all), Some(e(0, 1)));
        // Now make the low-probability expert extremely hot: frequency
        // rescues it.
        for t in 0..100 {
            p.on_hit(e(0, 1), t);
        }
        assert_eq!(p.choose_victim(&all), Some(e(0, 2)));
    }

    #[test]
    fn fmoe_priority_handles_unknown_probability() {
        let mut p = FmoePriorityPolicy::new();
        p.on_insert(e(0, 0), 0);
        p.on_insert(e(0, 1), 0);
        p.update_probability(e(0, 0), 0.9);
        // e(0,1) has no probability info: it gets the floor and is evicted
        // first.
        assert_eq!(p.choose_victim(&[e(0, 0), e(0, 1)]), Some(e(0, 1)));
    }

    #[test]
    fn empty_candidates_yield_none() {
        let p = LruPolicy::new();
        assert_eq!(p.choose_victim(&[]), None);
        let p = LfuPolicy::new();
        assert_eq!(p.choose_victim(&[]), None);
        let p = FmoePriorityPolicy::new();
        assert_eq!(p.choose_victim(&[]), None);
        let mut p = SievePolicy::new();
        assert_eq!(p.choose_victim(&[]), None);
        assert_eq!(p.choose_victim_mut(&[]), None);
        let p = FifoPolicy::new();
        assert_eq!(p.choose_victim(&[]), None);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut p = FifoPolicy::new();
        p.on_insert(e(0, 0), 0);
        p.on_insert(e(0, 1), 1);
        p.on_hit(e(0, 0), 2);
        p.on_hit(e(0, 0), 3);
        // Insertion order decides regardless of the hits.
        assert_eq!(p.choose_victim(&[e(0, 0), e(0, 1)]), Some(e(0, 0)));
        p.on_remove(e(0, 0));
        assert_eq!(p.choose_victim(&[e(0, 1)]), Some(e(0, 1)));
    }

    #[test]
    fn sieve_hit_buys_exactly_one_reprieve() {
        let mut p = SievePolicy::new();
        p.on_insert(e(0, 0), 0);
        p.on_insert(e(0, 1), 1);
        p.on_hit(e(0, 0), 2);
        let all = [e(0, 0), e(0, 1)];
        // Hand starts at the tail: e(0,0) is visited → spared (bit
        // cleared), e(0,1) is unvisited → victim.
        assert_eq!(p.choose_victim_mut(&all), Some(e(0, 1)));
        p.on_remove(e(0, 1));
        assert!(!p.is_visited(e(0, 0)), "the reprieve consumed the bit");
        // Next eviction takes it unless it is hit again.
        assert_eq!(p.choose_victim_mut(&[e(0, 0)]), Some(e(0, 0)));
    }

    #[test]
    fn sieve_peek_matches_mutable_scan() {
        let mut p = SievePolicy::new();
        for s in 0..6 {
            p.on_insert(e(0, s), u64::from(s));
        }
        for s in [0u32, 2, 4] {
            p.on_hit(e(0, s), 10 + u64::from(s));
        }
        let all: Vec<ExpertId> = (0..6).map(|s| e(0, s)).collect();
        for round in 0..5 {
            let peek = p.choose_victim(&all);
            let taken = p.choose_victim_mut(&all);
            assert_eq!(peek, taken, "round {round}");
            if let Some(v) = taken {
                p.on_remove(v);
            }
        }
    }

    #[test]
    fn sieve_skips_non_candidates_without_clearing_their_bit() {
        let mut p = SievePolicy::new();
        p.on_insert(e(0, 0), 0);
        p.on_hit(e(0, 0), 1);
        p.on_insert(e(0, 1), 2);
        // e(0,0) is pinned (not a candidate): the scan must pass over it
        // without spending its visited bit.
        assert_eq!(p.choose_victim_mut(&[e(0, 1)]), Some(e(0, 1)));
        assert!(p.is_visited(e(0, 0)));
    }

    #[test]
    fn sieve_hand_survives_removal_of_hand_entry() {
        let mut p = SievePolicy::new();
        for s in 0..4 {
            p.on_insert(e(0, s), u64::from(s));
        }
        for s in 0..4 {
            p.on_hit(e(0, s), 10 + u64::from(s));
        }
        let all: Vec<ExpertId> = (0..4).map(|s| e(0, s)).collect();
        // All visited: first lap clears, wrap picks the tail-most again.
        assert_eq!(p.choose_victim_mut(&all), Some(e(0, 0)));
        p.on_remove(e(0, 0));
        // Removing the entry the hand parked next to must not wedge it.
        assert_eq!(p.choose_victim_mut(&[e(0, 1), e(0, 2)]), Some(e(0, 1)));
    }

    #[test]
    fn policy_kind_builds_matching_names() {
        let kinds = [
            PolicyKind::Lru,
            PolicyKind::Lfu,
            PolicyKind::LfuCoarse,
            PolicyKind::FmoePriority {
                neutral_probability: 0.25,
            },
            PolicyKind::Sieve,
            PolicyKind::Fifo,
        ];
        for kind in kinds {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut p = FmoePriorityPolicy::new();
        p.on_insert(e(0, 0), 0);
        p.on_hit(e(0, 0), 1);
        p.update_probability(e(0, 0), 0.9);
        p.reset();
        p.on_insert(e(0, 1), 0);
        p.update_probability(e(0, 1), 0.5);
        // After reset, e(0,0)'s history is gone: floor prob, freq 1.
        assert_eq!(p.choose_victim(&[e(0, 0), e(0, 1)]), Some(e(0, 0)));
    }

    #[test]
    fn ties_break_deterministically() {
        let p = LruPolicy::new();
        // No bookkeeping at all: lowest ExpertId wins the tie.
        assert_eq!(p.choose_victim(&[e(1, 1), e(0, 3), e(2, 0)]), Some(e(0, 3)));
    }
}
