//! Cache statistics.

use serde::Serialize;

/// Counters describing cache behaviour over an experiment.
///
/// Invariant (checked by [`CacheStats::check_invariants`]): every lookup
/// is either a hit or a miss, so `hits + misses == lookups` — per cache,
/// per shard of a sharded cache, and for any [`CacheStats::merged`] sum
/// of such stats. Warm-restart replays are booked separately under
/// `warmup_inserts` so merging a pre-crash snapshot with post-restart
/// stats never double-counts replayed experts as demand insertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Expert lookups that found the expert resident.
    pub hits: u64,
    /// Expert lookups that missed (triggering on-demand loads).
    pub misses: u64,
    /// Total lookups recorded (`hits + misses`, kept explicitly so the
    /// invariant is checkable after merges).
    pub lookups: u64,
    /// Experts inserted (prefetch or on-demand completion).
    pub insertions: u64,
    /// Experts re-inserted by warm-restart replay (not fresh demand).
    pub warmup_inserts: u64,
    /// Experts evicted to make room.
    pub evictions: u64,
    /// Inserts refused because the expert exceeds its GPU budget outright.
    pub rejected_inserts: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `0.0` when no accesses were recorded.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total recorded accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// `true` when the lookup accounting identity `hits + misses ==
    /// lookups` holds. Holds for any cache, any shard, and any
    /// [`CacheStats::merged`] combination of stats that individually
    /// hold it (the identity is linear).
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        self.hits + self.misses == self.lookups
    }

    /// Field-wise sum with `other`. Used to carry counters across a
    /// replica restart (`ExpertCache::clear` resets stats, so lifetime
    /// accounting adds the pre-restart snapshot back in) and to merge
    /// per-shard stats of a `ShardedExpertCache` into one fleet view.
    #[must_use]
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            lookups: self.lookups + other.lookups,
            insertions: self.insertions + other.insertions,
            warmup_inserts: self.warmup_inserts + other.warmup_inserts,
            evictions: self.evictions + other.evictions,
            rejected_inserts: self.rejected_inserts + other.rejected_inserts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_computation() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(s.accesses(), 4);
    }

    #[test]
    fn empty_stats_hit_rate_is_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn merged_sums_field_wise_with_default_identity() {
        let a = CacheStats {
            hits: 3,
            misses: 1,
            lookups: 4,
            insertions: 5,
            warmup_inserts: 2,
            evictions: 2,
            rejected_inserts: 1,
        };
        let b = CacheStats {
            hits: 7,
            misses: 9,
            lookups: 16,
            insertions: 1,
            warmup_inserts: 0,
            evictions: 0,
            rejected_inserts: 4,
        };
        let m = a.merged(&b);
        assert_eq!(m.hits, 10);
        assert_eq!(m.misses, 10);
        assert_eq!(m.lookups, 20);
        assert_eq!(m.insertions, 6);
        assert_eq!(m.warmup_inserts, 2);
        assert_eq!(m.evictions, 2);
        assert_eq!(m.rejected_inserts, 5);
        assert_eq!(a.merged(&CacheStats::default()), a);
    }

    #[test]
    fn lookup_invariant_holds_and_is_preserved_by_merge() {
        let a = CacheStats {
            hits: 3,
            misses: 1,
            lookups: 4,
            ..Default::default()
        };
        let b = CacheStats {
            hits: 0,
            misses: 6,
            lookups: 6,
            ..Default::default()
        };
        assert!(a.check_invariants());
        assert!(b.check_invariants());
        assert!(a.merged(&b).check_invariants());
        let broken = CacheStats {
            hits: 1,
            misses: 1,
            lookups: 3,
            ..Default::default()
        };
        assert!(!broken.check_invariants());
    }
}
