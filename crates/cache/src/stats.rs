//! Cache statistics.

use serde::Serialize;

/// Counters describing cache behaviour over an experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Expert lookups that found the expert resident.
    pub hits: u64,
    /// Expert lookups that missed (triggering on-demand loads).
    pub misses: u64,
    /// Experts inserted (prefetch or on-demand completion).
    pub insertions: u64,
    /// Experts evicted to make room.
    pub evictions: u64,
    /// Inserts refused because the expert exceeds its GPU budget outright.
    pub rejected_inserts: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `0.0` when no accesses were recorded.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total recorded accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_computation() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(s.accesses(), 4);
    }

    #[test]
    fn empty_stats_hit_rate_is_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
