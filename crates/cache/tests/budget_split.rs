//! `ShardedExpertCache` budget-split invariant: the per-shard byte
//! budgets must sum to exactly the requested fleet total, for every
//! shard count — including prime counts and totals smaller than the
//! shard count. The pre-fix constructor integer-divided the total,
//! silently dropping up to `num_shards - 1` remainder bytes.

use fmoe_cache::{PolicyKind, ShardedExpertCache};
use fmoe_model::presets;

fn shard_budgets(total: u64, shards: usize) -> Vec<u64> {
    let model = presets::tiny_test_model();
    let cache = ShardedExpertCache::new(&model, total, shards, PolicyKind::Sieve);
    cache.occupancy().iter().map(|o| o.budget_bytes).collect()
}

#[test]
fn budgets_sum_to_total_exactly() {
    let model = presets::tiny_test_model();
    let eb = model.expert_bytes();
    for shards in [1, 2, 3, 4, 5, 7, 11, 13, 16, 17] {
        for total in [
            0,
            1,
            shards as u64 - 1,
            shards as u64,
            shards as u64 + 1,
            eb,
            eb * 8,
            eb * 8 + 3,
            eb * shards as u64 + (shards as u64 / 2),
        ] {
            let budgets = shard_budgets(total, shards);
            assert_eq!(
                budgets.iter().sum::<u64>(),
                total,
                "shards={shards} total={total}: no remainder bytes may be dropped"
            );
        }
    }
}

#[test]
fn remainder_goes_to_lowest_index_shards() {
    // 10 bytes over 4 shards: base 2, remainder 2 → [3, 3, 2, 2].
    assert_eq!(shard_budgets(10, 4), vec![3, 3, 2, 2]);
    // Prime shard count: 100 over 7 → base 14, remainder 2.
    assert_eq!(shard_budgets(100, 7), vec![15, 15, 14, 14, 14, 14, 14]);
}

#[test]
fn total_smaller_than_shard_count_lands_on_prefix() {
    // 3 bytes over 5 shards: shards 0..3 get one byte each.
    assert_eq!(shard_budgets(3, 5), vec![1, 1, 1, 0, 0]);
    assert_eq!(shard_budgets(0, 5), vec![0; 5]);
}

#[test]
fn even_splits_are_unchanged() {
    let model = presets::tiny_test_model();
    let total = model.expert_bytes() * 8;
    let budgets = shard_budgets(total, 4);
    assert!(budgets.iter().all(|&b| b == total / 4));
}

#[test]
fn split_is_deterministic() {
    for _ in 0..3 {
        assert_eq!(shard_budgets(12345, 7), shard_budgets(12345, 7));
    }
}
