//! Deterministic concurrency tests for [`ShardedExpertCache`].
//!
//! The sharded cache's determinism claim is *per-shard*: because experts
//! map to fixed disjoint shards, a concurrent run in which each shard
//! receives its operations in a fixed order produces exactly the state a
//! sequential replay produces — independent of thread interleaving. The
//! tests pin that claim three ways:
//!
//! 1. a fixed number of threads, each owning one shard's experts, driven
//!    by seeded per-thread schedules, must land on the same final
//!    residency/stats as a single-threaded replay of the same schedules;
//! 2. two in-process runs of the threaded version must agree exactly;
//! 3. two *separate OS processes* running the canonical-render helper
//!    must emit byte-identical output (`cross_process` below re-executes
//!    this test binary twice and compares stdout).

use fmoe_cache::{CacheStats, PolicyKind, ShardedExpertCache};
use fmoe_model::{presets, ExpertId};
use std::process::Command;
use std::sync::Arc;
use std::thread;

const NUM_EXPERTS: usize = 16;
const SHARDS: usize = 4;
const OPS_PER_THREAD: usize = 2_000;

fn expert(i: usize) -> ExpertId {
    ExpertId::from_dense_index(i % NUM_EXPERTS, 4)
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Access(ExpertId, u64),
    Insert(ExpertId, u64),
    Remove(ExpertId),
}

/// The seeded schedule for one thread. Every expert it touches belongs
/// to `shard` (the thread's own shard), so schedules are disjoint by
/// construction and the concurrent run is order-deterministic per shard.
fn schedule(cache: &ShardedExpertCache, shard: usize, seed: u64) -> Vec<Op> {
    let mut rng = SplitMix64(seed);
    let owned: Vec<ExpertId> = (0..NUM_EXPERTS)
        .map(expert)
        .filter(|&e| cache.shard_of(e) == shard)
        .collect();
    let mut clock = 0u64;
    (0..OPS_PER_THREAD)
        .map(|_| {
            clock += 1;
            let e = owned[(rng.next() % owned.len() as u64) as usize];
            match rng.next() % 10 {
                0..=4 => Op::Access(e, clock),
                5..=8 => Op::Insert(e, clock),
                _ => Op::Remove(e),
            }
        })
        .collect()
}

fn apply(cache: &ShardedExpertCache, op: Op) {
    match op {
        Op::Access(e, now) => {
            cache.record_access(e, now);
        }
        Op::Insert(e, now) => {
            cache.insert(e, now);
        }
        Op::Remove(e) => {
            cache.remove(e);
        }
    }
}

fn fresh_cache() -> ShardedExpertCache {
    let model = presets::tiny_test_model();
    ShardedExpertCache::new(&model, model.expert_bytes() * 8, SHARDS, PolicyKind::Sieve)
}

/// Runs the fixed schedules on `SHARDS` threads (thread t owns shard t)
/// and returns the final (residents, per-shard stats, merged stats).
fn run_threaded(base_seed: u64) -> (Vec<ExpertId>, Vec<CacheStats>, CacheStats) {
    let cache = Arc::new(fresh_cache());
    let schedules: Vec<Vec<Op>> = (0..SHARDS)
        .map(|s| schedule(&cache, s, base_seed.wrapping_add(s as u64 * 0x9e37)))
        .collect();
    thread::scope(|scope| {
        for ops in &schedules {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                for &op in ops {
                    apply(&cache, op);
                }
            });
        }
    });
    let shard_stats = (0..SHARDS).map(|s| cache.shard_stats(s)).collect();
    (cache.resident_experts_sorted(), shard_stats, cache.stats())
}

/// Single-threaded replay of the same schedules, in shard order.
fn run_sequential(base_seed: u64) -> (Vec<ExpertId>, Vec<CacheStats>, CacheStats) {
    let cache = fresh_cache();
    for s in 0..SHARDS {
        for op in schedule(&cache, s, base_seed.wrapping_add(s as u64 * 0x9e37)) {
            apply(&cache, op);
        }
    }
    let shard_stats = (0..SHARDS).map(|s| cache.shard_stats(s)).collect();
    (cache.resident_experts_sorted(), shard_stats, cache.stats())
}

#[test]
fn threaded_run_equals_sequential_merge() {
    for base_seed in [1u64, 42, 9001] {
        let threaded = run_threaded(base_seed);
        let sequential = run_sequential(base_seed);
        assert_eq!(threaded, sequential, "base seed {base_seed}");
        for stats in &threaded.1 {
            assert!(stats.check_invariants(), "per-shard lookup identity");
        }
        assert!(threaded.2.check_invariants(), "merged lookup identity");
    }
}

#[test]
fn repeated_threaded_runs_agree_exactly() {
    assert_eq!(run_threaded(7), run_threaded(7));
}

/// Canonical rendering used by the cross-process check: run the
/// threaded workload and print shard metrics as CSV. Stdout must be
/// byte-identical across processes.
#[test]
fn sharded_canonical_render_for_cross_process() {
    let cache = Arc::new(fresh_cache());
    let schedules: Vec<Vec<Op>> = (0..SHARDS).map(|s| schedule(&cache, s, 1234)).collect();
    thread::scope(|scope| {
        for ops in &schedules {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                for &op in ops {
                    apply(&cache, op);
                }
            });
        }
    });
    let mut registry = fmoe_trace::MetricsRegistry::new();
    cache.export_metrics("host_cache", &mut registry);
    println!("{}", registry.to_csv());
    for occ in cache.occupancy() {
        println!(
            "occupancy,{},{},{},{}",
            occ.shard, occ.residents, occ.used_bytes, occ.budget_bytes
        );
    }
}

#[test]
fn cross_process_double_run_is_byte_identical() {
    let exe = std::env::current_exe().expect("own test binary path");
    let run = || {
        let out = Command::new(&exe)
            .args([
                "--test-threads=1",
                "--exact",
                "sharded_canonical_render_for_cross_process",
                "--nocapture",
            ])
            .output()
            .expect("spawn test binary");
        assert!(out.status.success(), "child run failed: {out:?}");
        out.stdout
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty());
    assert_eq!(first, second, "cross-process renders diverged");
}
