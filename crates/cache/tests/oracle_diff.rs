//! Differential testing of the arena-backed cache against naive oracles.
//!
//! Each eviction policy with queue semantics (LRU, FIFO, SIEVE) gets a
//! deliberately dumb reference model built on plain `Vec`s — no arenas,
//! no intrusive links, no hand indices — and the real
//! [`ExpertCache`] is driven through thousands of seeded mixed
//! operations while the oracle shadows every step. After *every*
//! operation the two must agree on:
//!
//! * the eviction sequence (exact victims, in order),
//! * the resident set, and
//! * the full [`CacheStats`] counters.
//!
//! The op streams come from a splitmix64 generator seeded per run, so a
//! failure reproduces from its printed seed with no proptest machinery.
//! A proptest layer on top feeds shorter arbitrary sequences through the
//! same harness for shrinking-friendly counterexamples.

use fmoe_cache::{CacheStats, ExpertCache, InsertOutcome, PolicyKind};
use fmoe_model::{presets, ExpertId, ModelConfig};
use proptest::prelude::*;

const SLOTS: u64 = 3;
const NUM_EXPERTS: usize = 16;

fn expert(i: usize) -> ExpertId {
    ExpertId::from_dense_index(i % NUM_EXPERTS, 4)
}

/// Splitmix64: tiny, seedable, good enough to mix op streams.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Access(usize),
    Insert(usize),
    Remove(usize),
}

fn random_ops(seed: u64, count: usize) -> Vec<Op> {
    let mut rng = SplitMix64(seed);
    (0..count)
        .map(|_| {
            let e = (rng.next() % NUM_EXPERTS as u64) as usize;
            match rng.next() % 10 {
                0..=4 => Op::Access(e),
                5..=8 => Op::Insert(e),
                _ => Op::Remove(e),
            }
        })
        .collect()
}

/// What an eviction policy's reference model must provide: queue
/// bookkeeping plus victim selection over the full resident set.
trait Oracle {
    fn on_insert(&mut self, e: ExpertId);
    fn on_hit(&mut self, e: ExpertId);
    fn on_remove(&mut self, e: ExpertId);
    fn pick_victim(&mut self) -> ExpertId;
}

/// FIFO: victims in strict insertion order; hits change nothing.
#[derive(Default)]
struct FifoOracle {
    q: Vec<ExpertId>, // index 0 = oldest
}

impl Oracle for FifoOracle {
    fn on_insert(&mut self, e: ExpertId) {
        self.q.push(e);
    }
    fn on_hit(&mut self, _e: ExpertId) {}
    fn on_remove(&mut self, e: ExpertId) {
        self.q.retain(|&x| x != e);
    }
    fn pick_victim(&mut self) -> ExpertId {
        self.q[0]
    }
}

/// LRU: any touch (hit or re-insert) moves the entry to the newest end.
/// Valid as an oracle here because the driver's clock strictly
/// increases, so the real `LruPolicy`'s `(stamp, id)` minimum never has
/// to tie-break — recency order alone decides.
#[derive(Default)]
struct LruOracle {
    q: Vec<ExpertId>, // index 0 = least recently touched
}

impl Oracle for LruOracle {
    fn on_insert(&mut self, e: ExpertId) {
        self.q.push(e);
    }
    fn on_hit(&mut self, e: ExpertId) {
        self.q.retain(|&x| x != e);
        self.q.push(e);
    }
    fn on_remove(&mut self, e: ExpertId) {
        self.q.retain(|&x| x != e);
    }
    fn pick_victim(&mut self) -> ExpertId {
        self.q[0]
    }
}

/// SIEVE: a hand sweeps oldest → newest (wrapping), sparing visited
/// entries (clearing their bit) and evicting the first unvisited one;
/// the hand then parks on the entry just newer than the victim.
#[derive(Default)]
struct SieveOracle {
    q: Vec<(ExpertId, bool)>, // index 0 = oldest; bool = visited
    hand: Option<ExpertId>,
}

impl Oracle for SieveOracle {
    fn on_insert(&mut self, e: ExpertId) {
        self.q.push((e, false));
    }
    fn on_hit(&mut self, e: ExpertId) {
        if let Some(entry) = self.q.iter_mut().find(|(x, _)| *x == e) {
            entry.1 = true;
        }
    }
    fn on_remove(&mut self, e: ExpertId) {
        let Some(pos) = self.q.iter().position(|(x, _)| *x == e) else {
            return;
        };
        if self.hand == Some(e) {
            // Re-park on the next-newer entry, like the arena version.
            self.hand = self.q.get(pos + 1).map(|(x, _)| *x);
        }
        self.q.remove(pos);
    }
    fn pick_victim(&mut self) -> ExpertId {
        let mut pos = self
            .hand
            .and_then(|h| self.q.iter().position(|(x, _)| *x == h))
            .unwrap_or(0);
        loop {
            if self.q[pos].1 {
                self.q[pos].1 = false;
                pos = (pos + 1) % self.q.len();
            } else {
                let victim = self.q[pos].0;
                self.hand = self.q.get(pos + 1).map(|(x, _)| *x);
                return victim;
            }
        }
    }
}

/// Drives the real cache and the oracle through one op stream, checking
/// eviction sequence, residency, and stats after every step.
fn run_differential(kind: PolicyKind, oracle: &mut dyn Oracle, ops: &[Op], label: &str) {
    let cfg: ModelConfig = presets::tiny_test_model();
    let mut cache = ExpertCache::new(&cfg, cfg.expert_bytes() * SLOTS, 1, kind.build());

    let mut resident: Vec<ExpertId> = Vec::new();
    let mut stats = CacheStats::default();
    let mut clock = 0u64;

    for (step, &op) in ops.iter().enumerate() {
        clock += 1;
        match op {
            Op::Access(i) => {
                let e = expert(i);
                let hit = cache.record_access(e, clock);
                stats.lookups += 1;
                if resident.contains(&e) {
                    stats.hits += 1;
                    oracle.on_hit(e);
                    assert!(hit, "{label} step {step}: oracle expected hit on {e:?}");
                } else {
                    stats.misses += 1;
                    assert!(!hit, "{label} step {step}: oracle expected miss on {e:?}");
                }
            }
            Op::Insert(i) => {
                let e = expert(i);
                let outcome = cache.insert(e, clock);
                if resident.contains(&e) {
                    oracle.on_hit(e);
                    assert_eq!(
                        outcome,
                        InsertOutcome::AlreadyResident,
                        "{label} step {step}: {e:?} already resident"
                    );
                } else {
                    let mut expected_evicted = Vec::new();
                    while resident.len() as u64 >= SLOTS {
                        let victim = oracle.pick_victim();
                        oracle.on_remove(victim);
                        resident.retain(|&x| x != victim);
                        stats.evictions += 1;
                        expected_evicted.push(victim);
                    }
                    oracle.on_insert(e);
                    resident.push(e);
                    stats.insertions += 1;
                    assert_eq!(
                        outcome,
                        InsertOutcome::Inserted {
                            evicted: expected_evicted
                        },
                        "{label} step {step}: eviction sequence diverged inserting {e:?}"
                    );
                }
            }
            Op::Remove(i) => {
                let e = expert(i);
                let was_resident = resident.contains(&e);
                let removed = cache.remove(e);
                if was_resident {
                    oracle.on_remove(e);
                    resident.retain(|&x| x != e);
                }
                assert_eq!(removed, was_resident, "{label} step {step}: remove {e:?}");
            }
        }
        let mut want = resident.clone();
        want.sort_unstable();
        let got: Vec<ExpertId> = cache.resident_experts().collect();
        assert_eq!(got, want, "{label} step {step}: resident set diverged");
        assert_eq!(cache.stats(), stats, "{label} step {step}: stats diverged");
        assert!(cache.stats().check_invariants(), "{label} step {step}");
    }
}

fn oracle_for(kind: PolicyKind) -> Box<dyn Oracle> {
    match kind {
        PolicyKind::Fifo => Box::new(FifoOracle::default()),
        PolicyKind::Lru => Box::new(LruOracle::default()),
        PolicyKind::Sieve => Box::new(SieveOracle::default()),
        _ => unreachable!("no oracle for {kind:?}"),
    }
}

fn run_seeded(kind: PolicyKind, label: &str) {
    for seed in 0..24u64 {
        let ops = random_ops(seed * 0x5851_f42d + 1, 3_000);
        let mut oracle = oracle_for(kind);
        run_differential(kind, oracle.as_mut(), &ops, &format!("{label} seed {seed}"));
    }
}

#[test]
fn fifo_matches_naive_oracle_over_seeded_streams() {
    run_seeded(PolicyKind::Fifo, "fifo");
}

#[test]
fn lru_matches_naive_oracle_over_seeded_streams() {
    run_seeded(PolicyKind::Lru, "lru");
}

#[test]
fn sieve_matches_naive_oracle_over_seeded_streams() {
    run_seeded(PolicyKind::Sieve, "sieve");
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..NUM_EXPERTS).prop_map(Op::Access),
        (0usize..NUM_EXPERTS).prop_map(Op::Insert),
        (0usize..NUM_EXPERTS).prop_map(Op::Remove),
    ]
}

proptest! {
    #[test]
    fn fifo_matches_oracle_on_arbitrary_ops(ops in prop::collection::vec(arb_op(), 1..400)) {
        let mut oracle = FifoOracle::default();
        run_differential(PolicyKind::Fifo, &mut oracle, &ops, "fifo-prop");
    }

    #[test]
    fn lru_matches_oracle_on_arbitrary_ops(ops in prop::collection::vec(arb_op(), 1..400)) {
        let mut oracle = LruOracle::default();
        run_differential(PolicyKind::Lru, &mut oracle, &ops, "lru-prop");
    }

    #[test]
    fn sieve_matches_oracle_on_arbitrary_ops(ops in prop::collection::vec(arb_op(), 1..400)) {
        let mut oracle = SieveOracle::default();
        run_differential(PolicyKind::Sieve, &mut oracle, &ops, "sieve-prop");
    }
}
