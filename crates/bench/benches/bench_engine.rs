//! Criterion macrobenchmarks: end-to-end simulated serving throughput of
//! the engine for each policy. These measure *harness* wall-time per
//! simulated request (virtual time is free), demonstrating the simulator
//! runs thousands of times faster than the system it models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmoe_bench::harness::{CellConfig, System};
use fmoe_model::presets;
use fmoe_workload::DatasetSpec;
use std::hint::black_box;

fn bench_serve_request(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_request_mixtral");
    group.sample_size(10);
    for system in [System::DeepSpeed, System::Fmoe] {
        let cell = CellConfig::new(presets::mixtral_8x7b(), DatasetSpec::lmsys_chat(), system);
        let gate = cell.gate();
        let (history, test) = cell.split();
        group.bench_with_input(
            BenchmarkId::from_parameter(system.name()),
            &system,
            |b, _| {
                let mut predictor = cell.predictor(&gate, &history);
                let mut engine = cell.engine(cell.gate());
                let mut i = 0usize;
                b.iter(|| {
                    let mut p = test[i % test.len()];
                    p.output_tokens = p.output_tokens.min(8);
                    i += 1;
                    black_box(engine.serve_request(p, predictor.as_mut()))
                });
            },
        );
    }
    group.finish();
}

fn bench_full_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_cell");
    group.sample_size(10);
    let mut cell = CellConfig::new(
        presets::phi35_moe(),
        DatasetSpec::lmsys_chat(),
        System::Fmoe,
    );
    cell.test_requests = 4;
    cell.max_decode = 8;
    cell.warmup_requests = 1;
    group.bench_function("fmoe_phi_4req", |b| {
        b.iter(|| black_box(cell.run_offline()));
    });
    group.finish();
}

fn bench_continuous_batching(c: &mut Criterion) {
    use fmoe_serving::online::{serve, ServeOptions};
    use fmoe_workload::AzureTraceSpec;
    let mut group = c.benchmark_group("continuous_batching");
    group.sample_size(10);
    let mut cell = CellConfig::new(
        presets::phi35_moe(),
        DatasetSpec::lmsys_chat(),
        System::Fmoe,
    );
    cell.max_decode = 8;
    cell.warmup_requests = 0;
    let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::lmsys_chat());
    spec.num_requests = 8;
    let trace = spec.generate();
    group.bench_function("fmoe_phi_8req_4slots", |b| {
        b.iter(|| {
            let gate = cell.gate();
            let mut predictor = cell.predictor(&gate, &[]);
            let mut engine = cell.engine(cell.gate());
            black_box(
                serve(
                    &mut engine,
                    &trace,
                    predictor.as_mut(),
                    &ServeOptions::continuous(4),
                )
                .expect("continuous serving succeeds"),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_serve_request,
    bench_full_cell,
    bench_continuous_batching
);
criterion_main!(benches);
