//! Criterion microbenchmarks for the substrate components: the synthetic
//! router, the expert cache, and the transfer engine. These bound the
//! simulator's own overhead, guaranteeing experiment wall-times stay
//! dominated by the modeled system, not the harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmoe_cache::{ExpertCache, FmoePriorityPolicy, LruPolicy};
use fmoe_memsim::{GpuId, Topology, TransferEngine};
use fmoe_model::gate::TokenSpan;
use fmoe_model::{presets, ExpertId, GateParams, GateSimulator, RequestRouting};
use std::hint::black_box;

fn bench_gate(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate");
    for model in [presets::mixtral_8x7b(), presets::qwen15_moe_a27b()] {
        let gate = GateSimulator::new(model.clone(), GateParams::for_model(&model));
        let routing = RequestRouting {
            cluster: 2,
            request_seed: 7,
        };
        group.bench_with_input(
            BenchmarkId::new("decode_distribution", &model.name),
            &model,
            |b, _| {
                b.iter(|| {
                    black_box(gate.iteration_distribution(
                        routing,
                        black_box(3),
                        black_box(5),
                        TokenSpan::single(64),
                    ))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("prefill_activated_256tok", &model.name),
            &model,
            |b, _| {
                b.iter(|| {
                    black_box(gate.activated_slots(
                        routing,
                        0,
                        black_box(5),
                        TokenSpan::prefill(256),
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let model = presets::mixtral_8x7b();
    let mut group = c.benchmark_group("cache");
    group.bench_function("insert_evict_lru", |b| {
        let budget = model.expert_bytes() * 60;
        let mut cache = ExpertCache::new(&model, budget, 6, Box::new(LruPolicy::new()));
        let mut i = 0usize;
        b.iter(|| {
            let e = ExpertId::from_dense_index(i % 256, 8);
            i += 1;
            black_box(cache.insert(e, i as u64))
        });
    });
    group.bench_function("insert_evict_fmoe_priority", |b| {
        let budget = model.expert_bytes() * 60;
        let mut cache = ExpertCache::new(&model, budget, 6, Box::new(FmoePriorityPolicy::new()));
        let mut i = 0usize;
        b.iter(|| {
            let e = ExpertId::from_dense_index(i % 256, 8);
            cache.update_probability(e, 0.3);
            i += 1;
            black_box(cache.insert(e, i as u64))
        });
    });
    group.finish();
}

fn bench_transfer_engine(c: &mut Criterion) {
    let topo = Topology::paper_testbed();
    c.bench_function("transfer_submit_advance_drain", |b| {
        let mut engine = TransferEngine::new(&topo);
        let mut t = 0u64;
        let mut tag = 0u64;
        b.iter(|| {
            for g in 0..6u32 {
                engine.submit_prefetch(GpuId(g), tag, 64 << 20, t);
                tag += 1;
            }
            t += 5_000_000;
            engine.advance_to(t);
            black_box(engine.drain_completions().len())
        });
    });
}

criterion_group!(benches, bench_gate, bench_cache, bench_transfer_engine);
criterion_main!(benches);
