//! Criterion microbenchmarks for the Expert Map Matcher — the component
//! whose latency the engine's `matching_latency_ns` models (§6.7). These
//! measure the Rust implementation; the paper's Python matcher is slower,
//! which is why the engine's latency model is configurable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmoe::map::ExpertMap;
use fmoe::matcher::{Matcher, TrajectoryTracker};
use fmoe::store::ExpertMapStore;
use fmoe_model::gate::TokenSpan;
use fmoe_model::{presets, GateParams, GateSimulator, RequestRouting};
use std::hint::black_box;

fn build_store(capacity: usize) -> (GateSimulator, ExpertMapStore) {
    let model = presets::mixtral_8x7b();
    let gate = GateSimulator::new(model.clone(), GateParams::for_model(&model));
    let mut store = ExpertMapStore::new(
        capacity,
        model.num_layers as usize,
        model.experts_per_layer as usize,
        3,
    );
    let mut i = 0u64;
    while store.len() < capacity {
        let routing = RequestRouting {
            cluster: i % 40,
            request_seed: i,
        };
        let iter = i % 6;
        let span = TokenSpan::single(32 + iter);
        let rows: Vec<Vec<f64>> = (0..model.num_layers)
            .map(|l| gate.iteration_distribution(routing, iter, l, span))
            .collect();
        store.insert(gate.semantic_embedding(routing, iter), ExpertMap::new(rows));
        i += 1;
    }
    (gate, store)
}

fn bench_semantic_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("semantic_match");
    for capacity in [100usize, 1000] {
        let (gate, store) = build_store(capacity);
        let query = gate.semantic_embedding(
            RequestRouting {
                cluster: 3,
                request_seed: 999,
            },
            2,
        );
        group.bench_with_input(BenchmarkId::from_parameter(capacity), &capacity, |b, _| {
            b.iter(|| black_box(Matcher::semantic_match(&store, black_box(&query))));
        });
    }
    group.finish();
}

fn bench_trajectory_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("trajectory_observe_layer");
    for capacity in [100usize, 1000] {
        let (gate, store) = build_store(capacity);
        let routing = RequestRouting {
            cluster: 5,
            request_seed: 4242,
        };
        let dist = gate.iteration_distribution(routing, 1, 0, TokenSpan::single(16));
        group.bench_with_input(BenchmarkId::from_parameter(capacity), &capacity, |b, _| {
            b.iter(|| {
                let mut tracker = TrajectoryTracker::new();
                tracker.reset(&store);
                for _ in 0..8 {
                    tracker.observe_layer(&store, black_box(&dist));
                }
                black_box(tracker.best(&store))
            });
        });
    }
    group.finish();
}

fn bench_store_insert_at_capacity(c: &mut Criterion) {
    // Insertion at capacity runs the full redundancy-scored dedup scan.
    let (gate, mut store) = build_store(1000);
    let routing = RequestRouting {
        cluster: 9,
        request_seed: 777_777,
    };
    let model = presets::mixtral_8x7b();
    let rows: Vec<Vec<f64>> = (0..model.num_layers)
        .map(|l| gate.iteration_distribution(routing, 2, l, TokenSpan::single(40)))
        .collect();
    let emb = gate.semantic_embedding(routing, 2);
    c.bench_function("store_insert_dedup_1k", |b| {
        b.iter(|| {
            store.insert(
                black_box(emb.clone()),
                black_box(ExpertMap::new(rows.clone())),
            )
        });
    });
}

criterion_group!(
    benches,
    bench_semantic_match,
    bench_trajectory_incremental,
    bench_store_insert_at_capacity
);
criterion_main!(benches);
