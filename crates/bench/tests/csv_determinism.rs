//! Cross-process determinism: a bench binary run twice must emit
//! byte-identical CSVs (DESIGN.md §10), and a parallel `--jobs N` run
//! must emit the same bytes as a sequential one (DESIGN.md §12).
//!
//! The in-process tests in `tests/determinism.rs` would miss anything
//! keyed off process state — `HashMap` iteration order reseeds per
//! process, so hash-order leakage is only visible across *separate*
//! invocations. This spawns the real `fig9_overall --quick` binary
//! twice, each in its own scratch working directory, and diffs the
//! `results/*.csv` artifacts byte for byte.

use std::fs;
use std::path::Path;
use std::process::Command;

fn run_quick_bench(workdir: &Path) -> Vec<(String, Vec<u8>)> {
    run_quick_bench_with(workdir, &[])
}

fn run_quick_bench_with(workdir: &Path, extra_args: &[&str]) -> Vec<(String, Vec<u8>)> {
    fs::create_dir_all(workdir).expect("scratch dir");
    let out = Command::new(env!("CARGO_BIN_EXE_fig9_overall"))
        .arg("--quick")
        .args(extra_args)
        .current_dir(workdir)
        .output()
        .expect("fig9_overall runs");
    assert!(
        out.status.success(),
        "fig9_overall --quick failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let results = workdir.join("results");
    let mut csvs: Vec<(String, Vec<u8>)> = fs::read_dir(&results)
        .expect("results dir written")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .map(|p| {
            let name = p
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let bytes = fs::read(&p).expect("csv readable");
            (name, bytes)
        })
        .collect();
    csvs.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(!csvs.is_empty(), "bench produced no CSV output");
    csvs
}

#[test]
fn quick_bench_csvs_are_byte_identical_across_processes() {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("csv_determinism");
    let first = run_quick_bench(&base.join("run1"));
    let second = run_quick_bench(&base.join("run2"));
    assert_eq!(
        first.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        second.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "the two runs wrote different CSV file sets"
    );
    for ((name, a), (_, b)) in first.iter().zip(&second) {
        assert_eq!(
            a, b,
            "{name} differs between two identical --quick runs: the bench \
             pipeline leaked nondeterminism (hash order, wall clock, or \
             unseeded randomness)"
        );
    }
}

#[test]
fn parallel_and_sequential_runs_emit_identical_csv_bytes() {
    // The ParallelRunner contract (DESIGN.md §12): fanning sweep cells
    // across worker threads must not change a single output byte. Run
    // the same bench sequentially and with four workers and diff every
    // CSV artifact.
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("csv_jobs_determinism");
    let sequential = run_quick_bench_with(&base.join("jobs1"), &["--jobs", "1"]);
    let parallel = run_quick_bench_with(&base.join("jobs4"), &["--jobs", "4"]);
    assert_eq!(
        sequential.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        parallel.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "--jobs 1 and --jobs 4 wrote different CSV file sets"
    );
    for ((name, a), (_, b)) in sequential.iter().zip(&parallel) {
        assert_eq!(
            a, b,
            "{name} differs between --jobs 1 and --jobs 4: parallel \
             execution must reassemble results in input order and leak \
             no scheduling nondeterminism into the output"
        );
    }
}
