//! The fig11 eviction-policy companion table: SIEVE must beat (or tie)
//! FIFO on the Zipf-skewed trace at every cache size, and the whole
//! binary must emit byte-identical CSVs whether the sweep runs on one
//! worker or four, in separate OS processes.

use std::collections::HashMap;
use std::fs;
use std::path::Path;
use std::process::Command;

fn run_fig11(workdir: &Path, jobs: &str) -> Vec<(String, Vec<u8>)> {
    fs::create_dir_all(workdir).expect("scratch dir");
    let out = Command::new(env!("CARGO_BIN_EXE_fig11_cache_limits"))
        .args(["--quick", "--jobs", jobs])
        .current_dir(workdir)
        .output()
        .expect("fig11_cache_limits runs");
    assert!(
        out.status.success(),
        "fig11_cache_limits --quick failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let results = workdir.join("results");
    let mut csvs: Vec<(String, Vec<u8>)> = fs::read_dir(&results)
        .expect("results dir written")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .map(|p| {
            let name = p
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            (name, fs::read(&p).expect("csv readable"))
        })
        .collect();
    csvs.sort_by(|a, b| a.0.cmp(&b.0));
    csvs
}

/// Parses `fig11_policy_miss.csv` into (slots → policy → miss ratio).
fn parse_policy_miss(bytes: &[u8]) -> Vec<(u64, HashMap<String, f64>)> {
    let text = String::from_utf8_lossy(bytes);
    let mut lines = text.lines();
    let header: Vec<&str> = lines.next().expect("header row").split(',').collect();
    assert_eq!(header[0], "slots");
    lines
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let cells: Vec<&str> = line.split(',').collect();
            assert_eq!(cells.len(), header.len(), "ragged row: {line}");
            let slots: u64 = cells[0].parse().expect("slots cell");
            let ratios = header[1..]
                .iter()
                .zip(&cells[1..])
                .map(|(name, cell)| {
                    let ratio: f64 = cell.parse().expect("ratio cell");
                    assert!((0.0..=1.0).contains(&ratio), "{name}: {ratio}");
                    ((*name).to_string(), ratio)
                })
                .collect();
            (slots, ratios)
        })
        .collect()
}

#[test]
fn sieve_never_misses_more_than_fifo_on_the_zipf_trace() {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("fig11_policies");
    let csvs = run_fig11(&base.join("assert"), "2");
    let (_, bytes) = csvs
        .iter()
        .find(|(name, _)| name == "fig11_policy_miss.csv")
        .expect("policy miss table emitted");
    let rows = parse_policy_miss(bytes);
    assert!(rows.len() >= 3, "at least three cache sizes swept");
    for (slots, ratios) in &rows {
        let sieve = ratios["SIEVE"];
        let fifo = ratios["FIFO"];
        assert!(
            sieve <= fifo,
            "{slots} slots: SIEVE ({sieve}) must not miss more than FIFO ({fifo}) \
             on a Zipf-skewed trace — the visited bit exists to spare hot experts"
        );
    }
    // The sweep must show real skew sensitivity somewhere, not a
    // degenerate all-equal table.
    assert!(
        rows.iter().any(|(_, r)| r["SIEVE"] < r["FIFO"]),
        "SIEVE should strictly beat FIFO at some size on a skewed trace"
    );
}

#[test]
fn fig11_jobs1_and_jobs4_runs_are_byte_identical_across_processes() {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("fig11_policies_jobs");
    let sequential = run_fig11(&base.join("jobs1"), "1");
    let parallel = run_fig11(&base.join("jobs4"), "4");
    assert_eq!(
        sequential.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        parallel.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "--jobs 1 and --jobs 4 wrote different CSV file sets"
    );
    for ((name, a), (_, b)) in sequential.iter().zip(&parallel) {
        assert_eq!(a, b, "{name} differs between --jobs 1 and --jobs 4");
    }
}
