//! Cross-process checks for `fig13_cluster_chaos`:
//!
//! * determinism — a `--quick --jobs 1` run and a `--quick --jobs 4`
//!   run, each in its own scratch working directory, must write
//!   byte-identical `results/*.csv` artifacts (DESIGN.md §10/§12);
//! * the headline claim — parsing the summary CSV must show the
//!   donor-warmed restart recovering the pre-crash fleet hit rate in
//!   strictly fewer post-recovery requests than the cold restart in
//!   every (intensity, policy) cell, while paying real warmup bytes.

use std::fs;
use std::path::Path;
use std::process::Command;

fn run_quick(workdir: &Path, jobs: &str) -> Vec<(String, Vec<u8>)> {
    fs::create_dir_all(workdir).expect("scratch dir");
    let out = Command::new(env!("CARGO_BIN_EXE_fig13_cluster_chaos"))
        .args(["--quick", "--jobs", jobs])
        .current_dir(workdir)
        .output()
        .expect("fig13_cluster_chaos runs");
    assert!(
        out.status.success(),
        "fig13_cluster_chaos --quick --jobs {jobs} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut csvs: Vec<(String, Vec<u8>)> = fs::read_dir(workdir.join("results"))
        .expect("results dir written")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .map(|p| {
            let name = p
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let bytes = fs::read(&p).expect("csv readable");
            (name, bytes)
        })
        .collect();
    csvs.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(!csvs.is_empty(), "bench produced no CSV output");
    csvs
}

#[test]
fn chaos_bench_is_deterministic_across_processes_and_jobs() {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("fig13_determinism");
    let sequential = run_quick(&base.join("jobs1"), "1");
    let parallel = run_quick(&base.join("jobs4"), "4");
    assert_eq!(
        sequential.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        parallel.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "--jobs 1 and --jobs 4 wrote different CSV file sets"
    );
    for ((name, a), (_, b)) in sequential.iter().zip(&parallel) {
        assert_eq!(
            a, b,
            "{name} differs between --jobs 1 and --jobs 4: the chaos \
             dispatch or CSV pipeline leaked scheduling nondeterminism"
        );
    }
}

#[test]
fn donor_warmed_recovers_faster_than_cold_in_the_quick_sweep() {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("fig13_recovery");
    let csvs = run_quick(&base.join("run"), "2");
    let (_, summary) = csvs
        .iter()
        .find(|(name, _)| name == "fig13_cluster_chaos.csv")
        .expect("summary CSV present");
    let text = String::from_utf8(summary.clone()).expect("summary CSV is UTF-8");

    // Columns: intensity,policy,warmup,served,shed,goodput,avail,
    // hit_rate,p99_ms,failovers,warmup_mb,recovery_reqs
    let mut cells: Vec<(String, String, String, f64, u64)> = Vec::new();
    for line in text.lines().skip(1) {
        let cols: Vec<&str> = line.split(',').collect();
        cells.push((
            cols[0].to_string(),
            cols[1].to_string(),
            cols[2].to_string(),
            cols[10].parse().expect("warmup_mb"),
            cols[11].parse().expect("recovery_reqs"),
        ));
    }
    let mut compared = 0;
    for (intensity, policy, warmup, warm_mb, warm_reqs) in &cells {
        if warmup != "donor-warmed" {
            continue;
        }
        let (_, _, _, cold_mb, cold_reqs) = cells
            .iter()
            .find(|(i, p, w, _, _)| i == intensity && p == policy && w == "cold")
            .expect("cold cell for the same intensity and policy");
        assert!(
            warm_reqs < cold_reqs,
            "donor-warmed restart did not recover faster than cold at \
             intensity {intensity}, {policy}: {warm_reqs} vs {cold_reqs}"
        );
        assert!(*warm_mb > 0.0, "donor-warmed restart copies real bytes");
        assert_eq!(*cold_mb, 0.0, "cold restart copies nothing");
        compared += 1;
    }
    assert!(compared > 0, "the quick sweep must contain warmup pairs");
}
