//! Cross-process checks for `fig17_ep_all2all`:
//!
//! * determinism — a `--quick --jobs 1` run and a `--quick --jobs 4`
//!   run, each in its own scratch working directory, must write
//!   byte-identical `results/*.csv` artifacts (DESIGN.md §10/§12);
//! * the headline trade-off — parsing the summary CSV must show EP
//!   beating host offloading on P99 in the per-GPU-fixed regime, and a
//!   memory-constrained EP cell losing to offloading.

use std::fs;
use std::path::Path;
use std::process::Command;

fn run_quick(workdir: &Path, jobs: &str) -> Vec<(String, Vec<u8>)> {
    fs::create_dir_all(workdir).expect("scratch dir");
    let out = Command::new(env!("CARGO_BIN_EXE_fig17_ep_all2all"))
        .args(["--quick", "--jobs", jobs])
        .current_dir(workdir)
        .output()
        .expect("fig17_ep_all2all runs");
    assert!(
        out.status.success(),
        "fig17_ep_all2all --quick --jobs {jobs} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut csvs: Vec<(String, Vec<u8>)> = fs::read_dir(workdir.join("results"))
        .expect("results dir written")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .map(|p| {
            let name = p
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let bytes = fs::read(&p).expect("csv readable");
            (name, bytes)
        })
        .collect();
    csvs.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(!csvs.is_empty(), "bench produced no CSV output");
    csvs
}

#[test]
fn ep_bench_is_deterministic_across_processes_and_jobs() {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("fig17_determinism");
    let sequential = run_quick(&base.join("jobs1"), "1");
    let parallel = run_quick(&base.join("jobs4"), "4");
    assert_eq!(
        sequential.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        parallel.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "--jobs 1 and --jobs 4 wrote different CSV file sets"
    );
    for ((name, a), (_, b)) in sequential.iter().zip(&parallel) {
        assert_eq!(
            a, b,
            "{name} differs between --jobs 1 and --jobs 4: the EP sweep or \
             CSV pipeline leaked scheduling nondeterminism"
        );
    }
}

#[test]
fn summary_renders_both_directions_of_the_latency_memory_trade_off() {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("fig17_tradeoff");
    let csvs = run_quick(&base.join("run"), "2");
    let (_, summary) = csvs
        .iter()
        .find(|(name, _)| name == "fig17_ep_summary.csv")
        .expect("summary CSV present");
    let text = String::from_utf8(summary.clone()).expect("summary CSV is UTF-8");

    // Columns: mode,offload_p99_ms,best_ep_p99_ms,best_ep_cell,
    //          worst_ep_p99_ms,best_winner,worst_winner
    let mut per_gpu_fixed_ep_wins = false;
    let mut some_cell_loses_to_offload = false;
    for line in text.lines().skip(1) {
        let cols: Vec<&str> = line.split(',').collect();
        assert_eq!(cols.len(), 7, "summary row shape: {line}");
        if cols[0] == "per-gpu-fixed" {
            per_gpu_fixed_ep_wins = cols[5] == "ep_wins";
        }
        if cols[6] == "offload_wins" {
            some_cell_loses_to_offload = true;
        }
    }
    assert!(
        per_gpu_fixed_ep_wins,
        "per-GPU-fixed budgets must let EP beat host offloading on P99"
    );
    assert!(
        some_cell_loses_to_offload,
        "some memory-constrained EP cell must lose the P99 race to offloading"
    );
}
