//! Cross-process checks for `fig12_cluster_scaling`:
//!
//! * determinism — a `--quick --jobs 1` run and a `--quick --jobs 4`
//!   run, each in its own scratch working directory, must write
//!   byte-identical `results/*.csv` artifacts (DESIGN.md §10/§12);
//! * the headline claim — parsing the summary CSV must show semantic
//!   affinity beating (or tying) round-robin on fleet cache hit rate in
//!   every multi-replica cell, at equal shed counts.

use std::fs;
use std::path::Path;
use std::process::Command;

fn run_quick(workdir: &Path, jobs: &str) -> Vec<(String, Vec<u8>)> {
    fs::create_dir_all(workdir).expect("scratch dir");
    let out = Command::new(env!("CARGO_BIN_EXE_fig12_cluster_scaling"))
        .args(["--quick", "--jobs", jobs])
        .current_dir(workdir)
        .output()
        .expect("fig12_cluster_scaling runs");
    assert!(
        out.status.success(),
        "fig12_cluster_scaling --quick --jobs {jobs} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut csvs: Vec<(String, Vec<u8>)> = fs::read_dir(workdir.join("results"))
        .expect("results dir written")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .map(|p| {
            let name = p
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let bytes = fs::read(&p).expect("csv readable");
            (name, bytes)
        })
        .collect();
    csvs.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(!csvs.is_empty(), "bench produced no CSV output");
    csvs
}

#[test]
fn cluster_bench_is_deterministic_across_processes_and_jobs() {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("fig12_determinism");
    let sequential = run_quick(&base.join("jobs1"), "1");
    let parallel = run_quick(&base.join("jobs4"), "4");
    assert_eq!(
        sequential.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        parallel.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "--jobs 1 and --jobs 4 wrote different CSV file sets"
    );
    for ((name, a), (_, b)) in sequential.iter().zip(&parallel) {
        assert_eq!(
            a, b,
            "{name} differs between --jobs 1 and --jobs 4: the cluster \
             dispatch or CSV pipeline leaked scheduling nondeterminism"
        );
    }
}

#[test]
fn affinity_beats_round_robin_on_fleet_hit_rate_in_the_quick_sweep() {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("fig12_hit_rate");
    let csvs = run_quick(&base.join("run"), "2");
    let (_, summary) = csvs
        .iter()
        .find(|(name, _)| name == "fig12_cluster_scaling.csv")
        .expect("summary CSV present");
    let text = String::from_utf8(summary.clone()).expect("summary CSV is UTF-8");

    // Columns: replicas,rate,policy,served,shed,hit_rate,...
    let mut cells: Vec<(usize, String, String, usize, f64)> = Vec::new();
    for line in text.lines().skip(1) {
        let cols: Vec<&str> = line.split(',').collect();
        cells.push((
            cols[0].parse().expect("replicas"),
            cols[1].to_string(),
            cols[2].to_string(),
            cols[4].parse().expect("shed"),
            cols[5].parse().expect("hit_rate"),
        ));
    }
    let mut multi_replica_cells = 0;
    for (replicas, rate, policy, shed, hit) in &cells {
        if *replicas < 2 || policy != "semantic-affinity" {
            continue;
        }
        let (_, _, _, rr_shed, rr_hit) = cells
            .iter()
            .find(|(r, s, p, _, _)| r == replicas && s == rate && p == "round-robin")
            .expect("round-robin cell for the same load");
        assert_eq!(shed, rr_shed, "hit rates compared at unequal shed counts");
        assert!(
            hit >= rr_hit,
            "semantic affinity lost fleet hit rate to round-robin at \
             {replicas} replicas, rate {rate}: {hit:.4} < {rr_hit:.4}"
        );
        multi_replica_cells += 1;
    }
    assert!(
        multi_replica_cells > 0,
        "the quick sweep must contain multi-replica cells"
    );
}
