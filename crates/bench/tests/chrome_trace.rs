//! Trace-export contract for the bench pipeline: `fig9_overall --quick
//! --trace` must emit a Chrome-trace JSON that (a) parses as valid JSON
//! and (b) is byte-identical across two separate processes — the trace
//! recorder is part of the determinism surface (DESIGN.md §10), not an
//! exception to it.

use std::fs;
use std::path::Path;
use std::process::Command;

struct TraceArtifacts {
    chrome_json: String,
    phases_csv: Vec<u8>,
    metrics_csv: Vec<u8>,
}

fn run_traced_bench(workdir: &Path) -> TraceArtifacts {
    fs::create_dir_all(workdir).expect("scratch dir");
    let out = Command::new(env!("CARGO_BIN_EXE_fig9_overall"))
        .arg("--quick")
        .arg("--trace")
        .current_dir(workdir)
        .output()
        .expect("fig9_overall runs");
    assert!(
        out.status.success(),
        "fig9_overall --quick --trace failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let results = workdir.join("results");
    TraceArtifacts {
        chrome_json: fs::read_to_string(results.join("fig9_overall_trace.json"))
            .expect("trace JSON written"),
        phases_csv: fs::read(results.join("fig9_overall_phases.csv")).expect("phases CSV written"),
        metrics_csv: fs::read(results.join("fig9_overall_metrics.csv"))
            .expect("metrics CSV written"),
    }
}

#[test]
fn quick_bench_trace_export_is_valid_json_and_cross_process_deterministic() {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("chrome_trace");
    let first = run_traced_bench(&base.join("run1"));

    fmoe_trace::json::validate(&first.chrome_json)
        .unwrap_or_else(|e| panic!("Chrome-trace export is not valid JSON: {e:?}"));
    assert!(
        first.chrome_json.contains("\"traceEvents\""),
        "export must carry the Chrome-trace top-level key"
    );
    assert!(
        !first.phases_csv.is_empty() && !first.metrics_csv.is_empty(),
        "phase and metrics CSVs must be non-empty"
    );

    let second = run_traced_bench(&base.join("run2"));
    assert_eq!(
        first.chrome_json, second.chrome_json,
        "Chrome-trace JSON differs between two identical --trace runs"
    );
    assert_eq!(
        first.phases_csv, second.phases_csv,
        "phase breakdown CSV differs between two identical --trace runs"
    );
    assert_eq!(
        first.metrics_csv, second.metrics_csv,
        "metrics CSV differs between two identical --trace runs"
    );
}
