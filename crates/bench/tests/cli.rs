//! End-to-end tests of the `fmoe_sim` command-line tool: spawn the real
//! binary and check its contract (exit codes, output shape, the
//! serve → save-store → analyze-store round trip).

use std::process::Command;

fn fmoe_sim(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fmoe_sim"))
        .args(args)
        .output()
        .expect("binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn list_prints_the_registries() {
    let (ok, text) = fmoe_sim(&["list"]);
    assert!(ok);
    for needle in ["mixtral", "deepseek", "sharegpt", "swapmoe", "oracle"] {
        assert!(text.contains(needle), "missing {needle} in: {text}");
    }
}

#[test]
fn serve_offline_prints_metrics() {
    let (ok, text) = fmoe_sim(&[
        "serve",
        "--model",
        "small",
        "--dataset",
        "tiny",
        "--requests",
        "2",
        "--decode",
        "4",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("Small-Test-MoE"));
    assert!(text.contains("TTFT"));
    assert!(text.contains('%'), "hit rate column expected: {text}");
}

#[test]
fn serve_online_with_slots_runs_continuous_batching() {
    let (ok, text) = fmoe_sim(&[
        "serve",
        "--model",
        "small",
        "--dataset",
        "tiny",
        "--requests",
        "3",
        "--decode",
        "4",
        "--online",
        "--slots",
        "2",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("(online)"));
}

#[test]
fn unknown_names_fail_with_a_clear_error() {
    let (ok, text) = fmoe_sim(&["serve", "--model", "gpt5"]);
    assert!(!ok);
    assert!(text.contains("unknown --model"), "{text}");
    let (ok, text) = fmoe_sim(&["sweep", "--param", "nonsense", "--values", "1"]);
    assert!(!ok);
    assert!(
        text.contains("unknown sweep param") || text.contains("error"),
        "{text}"
    );
}

#[test]
fn store_round_trip_through_the_cli() {
    let dir = std::env::temp_dir().join("fmoe_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let store_path = dir.join("cli_store.fmoe");
    let store_str = store_path.to_str().unwrap();

    let (ok, text) = fmoe_sim(&[
        "serve",
        "--model",
        "small",
        "--dataset",
        "tiny",
        "--requests",
        "2",
        "--decode",
        "4",
        "--save-store",
        store_str,
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("saved"), "{text}");
    assert!(store_path.exists());

    let (ok, text) = fmoe_sim(&["analyze-store", "--file", store_str]);
    assert!(ok, "{text}");
    assert!(text.contains("entries:"));
    assert!(text.contains("8 layers x 8 experts"));
    std::fs::remove_file(&store_path).unwrap();
}

#[test]
fn timeline_renders_events() {
    let (ok, text) = fmoe_sim(&[
        "timeline",
        "--model",
        "small",
        "--dataset",
        "tiny",
        "--requests",
        "2",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("iteration 0 start"), "{text}");
    assert!(text.contains("ms"), "{text}");
}

#[test]
fn sweep_emits_one_row_per_value() {
    let (ok, text) = fmoe_sim(&[
        "sweep",
        "--param",
        "distance",
        "--values",
        "1,4",
        "--model",
        "small",
        "--dataset",
        "tiny",
        "--requests",
        "2",
        "--decode",
        "4",
    ]);
    assert!(ok, "{text}");
    // Both sweep values appear as leading row labels.
    assert!(
        text.lines().any(|l| l.trim_start().starts_with("1 ")),
        "{text}"
    );
    assert!(
        text.lines().any(|l| l.trim_start().starts_with("4 ")),
        "{text}"
    );
}
