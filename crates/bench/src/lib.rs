//! Experiment harness for regenerating every table and figure of the
//! paper's evaluation (§6).
//!
//! Each figure/table has a binary in `src/bin/` (see `DESIGN.md` §5 for
//! the index). This library holds what they share:
//!
//! * [`harness`] — experiment cells: `(model, dataset, system)` → a
//!   configured engine + predictor pair, offline store pre-population
//!   (the 70/30 split), and the standard offline run.
//! * [`report`] — aligned text tables and CSV emission under
//!   `results/`.
//! * [`policy_sweep`] — seeded Zipf expert traces and eviction-policy
//!   miss-ratio replays (the fig11 policy comparison).
//! * [`perf`] — the `BENCH_perf.json` schema, hand-rolled JSON both
//!   ways, and the baseline regression gate used by `perf_gate`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod perf;
pub mod plot;
pub mod policy_sweep;
pub mod report;

pub use harness::{CellConfig, System, SystemOutcome, TracedOutcome};
pub use plot::{LinePlot, Series};
pub use policy_sweep::{replay_miss_ratio, zipf_expert_trace};
pub use report::{write_csv, Table};
