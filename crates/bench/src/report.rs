//! Text tables and CSV emission for the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// The table as CSV (header + rows).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Writes a table as CSV under `results/<name>.csv` (relative to the
/// workspace root when run via `cargo run`), creating the directory if
/// needed.
///
/// # Errors
///
/// Returns any I/O error from directory creation or the write.
pub fn write_csv(table: &Table, name: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    fs::write(&path, table.to_csv())?;
    Ok(path)
}

/// Formats a millisecond value compactly.
#[must_use]
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 1000.0 {
        format!("{:.2} s", ms / 1000.0)
    } else {
        format!("{ms:.1} ms")
    }
}

/// Formats a rate as a percentage.
#[must_use]
pub fn fmt_pct(rate: f64) -> String {
    format!("{:.1}%", rate * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["sys", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("## Demo"));
        assert!(r.contains("longer-name"));
        // Column alignment: both value cells start at the same offset.
        let lines: Vec<&str> = r.lines().collect();
        let idx1 = lines[3].find('1').unwrap();
        let idx2 = lines[4].find('2').unwrap();
        assert_eq!(idx1, idx2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("Demo", &["name", "v"]);
        t.row(vec!["a,b".into(), "quo\"te".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"quo\"\"te\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ms(12.34), "12.3 ms");
        assert_eq!(fmt_ms(2345.0), "2.35 s");
        assert_eq!(fmt_pct(0.756), "75.6%");
    }
}
