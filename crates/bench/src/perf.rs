//! Perf-baseline schema and regression gate (DESIGN.md §16).
//!
//! `perf_smoke` writes a [`PerfReport`] to `BENCH_perf.json`; the
//! committed `BENCH_baseline.json` is the same schema frozen at a known
//! good commit. `perf_gate` (and `perf_smoke` itself, informationally)
//! compare the two with [`gate`]:
//!
//! * **Portable invariants** hold on any machine: `sweep_speedup` must
//!   not drop below 1.0 whenever a parallel sweep actually ran, and the
//!   structure-of-arrays matcher fast path must not be slower than its
//!   reference scan.
//! * **Absolute wall-clock comparisons** (requests/sec, matcher
//!   queries/sec, …) are only meaningful between runs on comparable
//!   hardware, so they apply the 15% tolerance **only when the
//!   parallelism + mode fingerprint matches** and are skipped (visibly,
//!   never silently) otherwise.
//!
//! Speedups whose numerator or denominator wall time rounds to zero are
//! `None` — serialized as JSON `null` — and skip their gate check
//! rather than reporting a bogus `0.0` or `inf`.
//!
//! The JSON is hand-rolled both ways (the workspace deliberately has no
//! JSON dependency); [`PerfReport::from_json`] is a tiny recursive-
//! descent parser over exactly the value grammar the schema uses. No
//! wall clocks here: timing stays in the bench *binaries* (FM002).

/// Default regression tolerance: 15% (the CI gate contract).
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// One timed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRecord {
    /// Stable scenario name (`sweep_offline_jobs1`, …).
    pub scenario: String,
    /// Wall time of the whole scenario, milliseconds.
    pub wall_ms: f64,
    /// Scenario iterations per second.
    pub iters_per_s: f64,
    /// Worker threads the scenario used.
    pub jobs: usize,
}

/// Workload size of a `perf_smoke` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// CI-sized: seconds, not minutes.
    Quick,
    /// The original full-size workload.
    Full,
}

impl RunMode {
    /// Serialized form.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RunMode::Quick => "quick",
            RunMode::Full => "full",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "quick" => Some(RunMode::Quick),
            "full" => Some(RunMode::Full),
            _ => None,
        }
    }
}

/// Everything one `perf_smoke` run measured, plus the hardware
/// fingerprint that decides which baseline comparisons are meaningful.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// `--jobs` as requested on the command line.
    pub jobs: usize,
    /// The machine's available parallelism at run time. Absolute
    /// wall-clock comparisons across runs are only made when this (and
    /// [`Self::mode`]) match.
    pub parallelism: usize,
    /// Workload size.
    pub mode: RunMode,
    /// jobs1 / jobsN sweep wall-time ratio. `None` when no parallel run
    /// happened (one effective worker) or a wall time rounded to zero.
    pub sweep_speedup: Option<f64>,
    /// 1-shard / 16-shard contention wall-time ratio (same `None` rules).
    pub shard_speedup: Option<f64>,
    /// Per-scenario timings.
    pub records: Vec<PerfRecord>,
}

/// Wall-time ratio `baseline_ms / candidate_ms`, or `None` when either
/// side rounds to zero — a sub-millisecond measurement carries no
/// information, and `0.0` / `inf` would poison downstream gates.
#[must_use]
pub fn speedup(baseline_ms: f64, candidate_ms: f64) -> Option<f64> {
    (baseline_ms > 0.0 && candidate_ms > 0.0).then(|| baseline_ms / candidate_ms)
}

fn json_f64_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "null".to_string(),
    }
}

impl PerfReport {
    /// The record for `scenario`, if this run produced one.
    #[must_use]
    pub fn record(&self, scenario: &str) -> Option<&PerfRecord> {
        self.records.iter().find(|r| r.scenario == scenario)
    }

    /// Serializes to the `BENCH_perf.json` schema. Speedups that could
    /// not be measured are emitted as `null`, never `0.0`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"perf_smoke\",\n");
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"parallelism\": {},\n", self.parallelism));
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode.as_str()));
        out.push_str(&format!(
            "  \"sweep_speedup\": {},\n",
            json_f64_opt(self.sweep_speedup)
        ));
        out.push_str(&format!(
            "  \"shard_speedup\": {},\n",
            json_f64_opt(self.shard_speedup)
        ));
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"wall_ms\": {:.3}, \"iters_per_s\": {:.3}, \"jobs\": {}}}{}\n",
                r.scenario,
                r.wall_ms,
                r.iters_per_s,
                r.jobs,
                if i + 1 == self.records.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the `BENCH_perf.json` schema. Strict enough to reject a
    /// truncated or foreign file with a message, lenient about field
    /// order and whitespace.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let value = parse_json(s)?;
        let obj = value.as_obj().ok_or("top level is not an object")?;
        let num_field = |name: &str| -> Result<f64, String> {
            obj_get(obj, name)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing numeric field `{name}`"))
        };
        let opt_field = |name: &str| -> Result<Option<f64>, String> {
            match obj_get(obj, name) {
                Some(JsonValue::Null) => Ok(None),
                Some(v) => v
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| format!("field `{name}` is neither a number nor null")),
                None => Err(format!("missing field `{name}`")),
            }
        };
        let mode_str = obj_get(obj, "mode")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field `mode`")?;
        let mode = RunMode::parse(mode_str).ok_or_else(|| format!("unknown mode `{mode_str}`"))?;
        let records_val = obj_get(obj, "records")
            .and_then(JsonValue::as_arr)
            .ok_or("missing array field `records`")?;
        let mut records = Vec::with_capacity(records_val.len());
        for rv in records_val {
            let ro = rv.as_obj().ok_or("record is not an object")?;
            let rnum = |name: &str| -> Result<f64, String> {
                obj_get(ro, name)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("record missing numeric field `{name}`"))
            };
            records.push(PerfRecord {
                scenario: obj_get(ro, "scenario")
                    .and_then(JsonValue::as_str)
                    .ok_or("record missing string field `scenario`")?
                    .to_string(),
                wall_ms: rnum("wall_ms")?,
                iters_per_s: rnum("iters_per_s")?,
                jobs: rnum("jobs")? as usize,
            });
        }
        Ok(PerfReport {
            jobs: num_field("jobs")? as usize,
            parallelism: num_field("parallelism")? as usize,
            mode,
            sweep_speedup: opt_field("sweep_speedup")?,
            shard_speedup: opt_field("shard_speedup")?,
            records,
        })
    }
}

// ---------------------------------------------------------------------
// Minimal JSON value parser (objects, arrays, strings, numbers, null,
// booleans) — just enough for the schema above, no escapes beyond `\"`
// and `\\` (the schema never emits others).

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(o) => Some(o),
            _ => None,
        }
    }
}

fn obj_get<'a>(obj: &'a [(String, JsonValue)], name: &str) -> Option<&'a JsonValue> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_json(s: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.consume(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        _ => return Err(format!("unsupported escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 scalar so multi-byte text
                    // in scenario names round-trips.
                    let rest = &self.bytes[self.pos..];
                    let step = match std::str::from_utf8(rest)
                        .ok()
                        .and_then(|s| s.chars().next())
                    {
                        Some(c) => {
                            out.push(c);
                            c.len_utf8()
                        }
                        None => return Err(format!("invalid UTF-8 at byte {}", self.pos)),
                    };
                    self.pos += step;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("malformed number at byte {start}"))
    }
}

// ---------------------------------------------------------------------
// Gate logic.

/// Verdict of one gate check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckStatus {
    /// Within tolerance / invariant holds.
    Pass,
    /// Regression beyond tolerance / invariant broken.
    Fail,
    /// Not comparable on this pair of runs (reason in `detail`).
    Skip,
}

/// One line of the gate's delta table.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// What was compared.
    pub name: String,
    /// Baseline value, when one applies.
    pub baseline: Option<f64>,
    /// Current value, when one was measured.
    pub current: Option<f64>,
    /// Verdict.
    pub status: CheckStatus,
    /// Human-readable explanation (why skipped / how far off).
    pub detail: String,
}

/// The full gate result.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Every check, in evaluation order.
    pub checks: Vec<GateCheck>,
}

impl GateOutcome {
    /// Whether no check failed (skips do not fail the gate).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.status != CheckStatus::Fail)
    }

    /// An aligned, human-readable delta table (printed by the CI step on
    /// failure, and by `perf_smoke` informationally).
    #[must_use]
    pub fn delta_table(&self) -> String {
        let fmt_opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:>12.3}"),
            None => format!("{:>12}", "-"),
        };
        let mut out = format!(
            "{:<34} {:>12} {:>12} {:>8}  {}\n",
            "check", "baseline", "current", "status", "detail"
        );
        for c in &self.checks {
            let status = match c.status {
                CheckStatus::Pass => "pass",
                CheckStatus::Fail => "FAIL",
                CheckStatus::Skip => "skip",
            };
            out.push_str(&format!(
                "{:<34} {} {} {:>8}  {}\n",
                c.name,
                fmt_opt(c.baseline),
                fmt_opt(c.current),
                status,
                c.detail
            ));
        }
        out
    }
}

/// Compares `current` against `baseline` (see module docs for the
/// portable-vs-absolute split). `tolerance` is the allowed fractional
/// regression, e.g. `0.15`.
#[must_use]
pub fn gate(baseline: &PerfReport, current: &PerfReport, tolerance: f64) -> GateOutcome {
    let mut checks = Vec::new();

    // Portable invariant: whenever a parallel sweep ran, it must beat
    // sequential. A `null` speedup means no parallel run was possible
    // (one effective worker) — skipped, not failed.
    checks.push(match current.sweep_speedup {
        Some(s) if s < 1.0 => GateCheck {
            name: "sweep_speedup >= 1.0".to_string(),
            baseline: None,
            current: Some(s),
            status: CheckStatus::Fail,
            detail: format!("parallel sweep slower than sequential ({s:.3}x)"),
        },
        Some(s) => GateCheck {
            name: "sweep_speedup >= 1.0".to_string(),
            baseline: None,
            current: Some(s),
            status: CheckStatus::Pass,
            detail: String::new(),
        },
        None => GateCheck {
            name: "sweep_speedup >= 1.0".to_string(),
            baseline: None,
            current: None,
            status: CheckStatus::Skip,
            detail: format!(
                "no parallel sweep ran (parallelism={})",
                current.parallelism
            ),
        },
    });

    // Portable invariant: the matcher fast path must not be slower than
    // its reference scan (tolerance absorbs timer noise).
    checks.push(
        match (
            current.record("matcher_semantic_fast"),
            current.record("matcher_semantic_reference"),
        ) {
            (Some(fast), Some(reference))
                if fast.iters_per_s > 0.0 && reference.iters_per_s > 0.0 =>
            {
                let floor = reference.iters_per_s * (1.0 - tolerance);
                let failed = fast.iters_per_s < floor;
                GateCheck {
                    name: "matcher fast >= reference".to_string(),
                    baseline: Some(reference.iters_per_s),
                    current: Some(fast.iters_per_s),
                    status: if failed {
                        CheckStatus::Fail
                    } else {
                        CheckStatus::Pass
                    },
                    detail: if failed {
                        "fast-path matcher slower than the reference scan".to_string()
                    } else {
                        String::new()
                    },
                }
            }
            _ => GateCheck {
                name: "matcher fast >= reference".to_string(),
                baseline: None,
                current: None,
                status: CheckStatus::Skip,
                detail: "matcher scenarios missing or unmeasurable".to_string(),
            },
        },
    );

    // Absolute comparisons: per-scenario throughput vs the baseline,
    // only on matching hardware/workload fingerprints.
    let comparable = baseline.parallelism == current.parallelism && baseline.mode == current.mode;
    for base in &baseline.records {
        let name = format!("{} iters/s", base.scenario);
        let check = if !comparable {
            GateCheck {
                name,
                baseline: Some(base.iters_per_s),
                current: current.record(&base.scenario).map(|r| r.iters_per_s),
                status: CheckStatus::Skip,
                detail: format!(
                    "fingerprint differs (baseline parallelism={} mode={}, current parallelism={} mode={})",
                    baseline.parallelism,
                    baseline.mode.as_str(),
                    current.parallelism,
                    current.mode.as_str()
                ),
            }
        } else {
            match current.record(&base.scenario) {
                Some(cur) if base.iters_per_s > 0.0 && cur.iters_per_s > 0.0 => {
                    let floor = base.iters_per_s * (1.0 - tolerance);
                    let failed = cur.iters_per_s < floor;
                    let delta = (cur.iters_per_s - base.iters_per_s) / base.iters_per_s * 100.0;
                    GateCheck {
                        name,
                        baseline: Some(base.iters_per_s),
                        current: Some(cur.iters_per_s),
                        status: if failed {
                            CheckStatus::Fail
                        } else {
                            CheckStatus::Pass
                        },
                        detail: format!("{delta:+.1}%"),
                    }
                }
                Some(cur) => GateCheck {
                    name,
                    baseline: Some(base.iters_per_s),
                    current: Some(cur.iters_per_s),
                    status: CheckStatus::Skip,
                    detail: "wall time rounded to zero; not comparable".to_string(),
                },
                None => GateCheck {
                    name,
                    baseline: Some(base.iters_per_s),
                    current: None,
                    status: CheckStatus::Fail,
                    detail: "scenario missing from current run".to_string(),
                },
            }
        };
        checks.push(check);
    }

    GateOutcome { checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PerfReport {
        PerfReport {
            jobs: 4,
            parallelism: 1,
            mode: RunMode::Quick,
            sweep_speedup: None,
            shard_speedup: Some(2.5),
            records: vec![
                PerfRecord {
                    scenario: "sweep_offline_jobs1".to_string(),
                    wall_ms: 1234.5,
                    iters_per_s: 12.15,
                    jobs: 1,
                },
                PerfRecord {
                    scenario: "matcher_semantic_fast".to_string(),
                    wall_ms: 10.0,
                    iters_per_s: 20000.0,
                    jobs: 1,
                },
                PerfRecord {
                    scenario: "matcher_semantic_reference".to_string(),
                    wall_ms: 20.0,
                    iters_per_s: 10000.0,
                    jobs: 1,
                },
            ],
        }
    }

    #[test]
    fn to_json_emits_null_for_unmeasurable_speedups() {
        // Satellite: a denominator that rounds to zero must yield `null`
        // in the JSON — never `0.000` (which the gate would read as a
        // catastrophic regression).
        let json = report().to_json();
        assert!(json.contains("\"sweep_speedup\": null"), "{json}");
        assert!(json.contains("\"shard_speedup\": 2.500"), "{json}");
        assert!(!json.contains("\"sweep_speedup\": 0.000"), "{json}");
        assert!(json.contains("\"parallelism\": 1"), "{json}");
        assert!(json.contains("\"mode\": \"quick\""), "{json}");
    }

    #[test]
    fn json_round_trips() {
        let original = report();
        let parsed = PerfReport::from_json(&original.to_json());
        assert_eq!(parsed, Ok(original));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(PerfReport::from_json("").is_err());
        assert!(PerfReport::from_json("{\"jobs\": }").is_err());
        assert!(PerfReport::from_json("[1, 2, 3]").is_err());
        assert!(PerfReport::from_json("{\"jobs\": 1}").is_err());
        let trailing = format!("{} extra", report().to_json());
        assert!(PerfReport::from_json(&trailing).is_err());
    }

    #[test]
    fn speedup_is_none_when_either_side_rounds_to_zero() {
        assert_eq!(speedup(0.0, 10.0), None);
        assert_eq!(speedup(10.0, 0.0), None);
        assert_eq!(speedup(0.0, 0.0), None);
        let s = speedup(20.0, 10.0);
        assert!(s.is_some_and(|v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn gate_passes_identical_runs() {
        let r = report();
        let outcome = gate(&r, &r, DEFAULT_TOLERANCE);
        assert!(outcome.passed(), "{}", outcome.delta_table());
        // The unmeasurable sweep_speedup is skipped, not failed.
        assert!(outcome
            .checks
            .iter()
            .any(|c| c.name.starts_with("sweep_speedup") && c.status == CheckStatus::Skip));
    }

    #[test]
    fn gate_fails_on_throughput_regression_beyond_tolerance() {
        let base = report();
        let mut cur = report();
        if let Some(r) = cur
            .records
            .iter_mut()
            .find(|r| r.scenario == "sweep_offline_jobs1")
        {
            r.iters_per_s = base.records[0].iters_per_s * 0.80; // -20% < -15%
        }
        let outcome = gate(&base, &cur, DEFAULT_TOLERANCE);
        assert!(!outcome.passed(), "{}", outcome.delta_table());
        // Within tolerance passes.
        let mut ok = report();
        if let Some(r) = ok
            .records
            .iter_mut()
            .find(|r| r.scenario == "sweep_offline_jobs1")
        {
            r.iters_per_s = base.records[0].iters_per_s * 0.90; // -10% > -15%
        }
        assert!(gate(&base, &ok, DEFAULT_TOLERANCE).passed());
    }

    #[test]
    fn gate_fails_on_sub_unity_sweep_speedup() {
        let base = report();
        let mut cur = report();
        cur.sweep_speedup = Some(0.876);
        let outcome = gate(&base, &cur, DEFAULT_TOLERANCE);
        assert!(!outcome.passed());
        assert!(outcome
            .checks
            .iter()
            .any(|c| c.name.starts_with("sweep_speedup") && c.status == CheckStatus::Fail));
    }

    #[test]
    fn gate_skips_absolute_comparisons_across_fingerprints() {
        let base = report();
        let mut cur = report();
        cur.parallelism = 4; // different machine
        if let Some(r) = cur
            .records
            .iter_mut()
            .find(|r| r.scenario == "sweep_offline_jobs1")
        {
            r.iters_per_s = 0.1; // would be a huge "regression"
        }
        let outcome = gate(&base, &cur, DEFAULT_TOLERANCE);
        assert!(outcome.passed(), "{}", outcome.delta_table());
        assert!(outcome
            .checks
            .iter()
            .any(|c| c.status == CheckStatus::Skip && c.detail.contains("fingerprint")));
    }

    #[test]
    fn gate_fails_when_matcher_fast_path_loses_to_reference() {
        let base = report();
        let mut cur = report();
        if let Some(r) = cur
            .records
            .iter_mut()
            .find(|r| r.scenario == "matcher_semantic_fast")
        {
            r.iters_per_s = 5000.0; // reference does 10000
        }
        // Same fingerprint would also fail the absolute check; isolate
        // the portable invariant by changing the fingerprint.
        cur.parallelism = 8;
        let outcome = gate(&base, &cur, DEFAULT_TOLERANCE);
        assert!(!outcome.passed());
        assert!(outcome
            .checks
            .iter()
            .any(|c| c.name.contains("matcher fast") && c.status == CheckStatus::Fail));
    }

    #[test]
    fn delta_table_is_aligned_and_complete() {
        let r = report();
        let outcome = gate(&r, &r, DEFAULT_TOLERANCE);
        let table = outcome.delta_table();
        assert_eq!(table.lines().count(), outcome.checks.len() + 1);
        assert!(table.contains("baseline"));
        assert!(table.contains("status"));
    }
}
