//! Extension experiment (not a paper figure): Hobbit-style mixed-precision
//! expert staging — moving fMoE along the *lossy* axis of the paper's
//! design space (Fig. 2).
//!
//! The paper serves lossless and cites Hobbit (related work, §7) for the
//! complementary idea: stage *less-critical* experts at reduced precision.
//! With the searched expert map in hand, fMoE has exactly the criticality
//! signal Hobbit needs — the activation probability `p` of each planned
//! expert. This experiment sweeps the probability threshold below which a
//! prefetch is staged at half precision (half the transfer time, half the
//! cache bytes) and reports the latency/quality frontier, where "quality"
//! is proxied by the fraction of expert accesses served by a degraded
//! expert.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin ext_mixed_precision
//! ```

use fmoe_bench::harness::{CellConfig, System};
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::presets;
use fmoe_workload::DatasetSpec;

fn main() {
    let mut table = Table::new(
        "Extension: mixed-precision staging threshold sweep (Mixtral-8x7B, 25% budget)",
        &[
            "threshold",
            "TTFT (ms)",
            "TPOT (ms)",
            "hit rate",
            "degraded accesses",
        ],
    );
    let model = presets::mixtral_8x7b();
    for threshold in [None, Some(0.05), Some(0.10), Some(0.20), Some(0.40)] {
        let mut cell = CellConfig::new(model.clone(), DatasetSpec::lmsys_chat(), System::Fmoe);
        cell.test_requests = 10;
        cell.max_decode = 16;
        cell.cache_budget_bytes = (model.total_expert_bytes() as f64 * 0.25) as u64;
        let gate = cell.gate();
        let (history, test) = cell.split();
        let mut predictor = cell.predictor(&gate, &history);
        let mut config = fmoe_serving::EngineConfig {
            cache_budget_bytes: cell.cache_budget_bytes,
            preload_all: false,
            max_decode_iterations: Some(cell.max_decode),
            context_collection_ns: 1_200_000,
            framework_overhead_per_layer_ns: 3_000_000,
            low_precision_threshold: threshold,
            ..fmoe_serving::EngineConfig::paper_default()
        };
        config.low_precision_threshold = threshold;
        let mut engine = fmoe_serving::ServingEngine::new(
            gate,
            fmoe_model::GpuSpec::rtx_3090(),
            cell.topology.clone(),
            System::Fmoe.cache_policy(model.experts_per_layer),
            config,
        );
        for p in history.iter().take(cell.warmup_requests) {
            let _ = engine.serve_request(*p, predictor.as_mut());
        }
        let metrics: Vec<_> = test
            .iter()
            .take(cell.test_requests)
            .map(|p| engine.serve_request(*p, predictor.as_mut()))
            .collect();
        let a = fmoe_serving::AggregateMetrics::from_requests(&metrics);
        table.row(vec![
            threshold.map_or("off (lossless)".into(), |t| format!("p < {t:.2}")),
            format!("{:.0}", a.mean_ttft_ms),
            format!("{:.0}", a.mean_tpot_ms),
            format!("{:.1}%", a.hit_rate * 100.0),
            format!("{:.1}%", a.degraded_fraction * 100.0),
        ]);
    }
    table.print();
    let _ = write_csv(&table, "ext_mixed_precision");
    println!("expected: raising the threshold trades quality (more accesses hit");
    println!("quantized experts) for latency and effective cache capacity — the");
    println!("lossless row is the paper's fMoE; the sweep charts Fig. 2's lossy axis.");
}
