//! Figure 9 (+ §6.2 headline numbers): overall prefill/decode performance
//! of fMoE and the four baselines across 3 models × 2 datasets.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin fig9_overall [--quick] [--trace] [--jobs N]
//! ```
//!
//! `--jobs N` fans the independent (model, dataset, system) cells across
//! N worker threads (default: available parallelism). Output is
//! byte-identical to the sequential run — see `ParallelRunner`.
//!
//! With `--trace`, one representative fMoE cell is re-run with the
//! deterministic trace recorder on, emitting a Chrome-trace timeline
//! (`results/fig9_overall_trace.json`, loadable in `chrome://tracing` or
//! Perfetto), a per-phase time breakdown
//! (`results/fig9_overall_phases.csv`), and the run's counters
//! (`results/fig9_overall_metrics.csv`).

use fmoe_bench::harness::{CellConfig, ParallelRunner, System};
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::presets;
use fmoe_workload::DatasetSpec;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trace = std::env::args().any(|a| a == "--trace");
    let runner = ParallelRunner::from_args();
    let (requests, decode) = if quick { (6, 16) } else { (14, 24) };

    let mut table = Table::new(
        "Figure 9: overall TTFT / TPOT / expert hit rate (offline, 70/30 split)",
        &[
            "model",
            "dataset",
            "system",
            "TTFT (ms)",
            "TPOT (ms)",
            "hit rate",
        ],
    );

    // Per-system accumulators for the §6.2 averages.
    let systems = System::paper_lineup();
    let mut sums = vec![(0.0f64, 0.0f64, 0.0f64, 0u32); systems.len()];

    // Every (model, dataset, system) cell is independent: enumerate them
    // in the original loop order, fan the runs across the runner's
    // workers, then emit rows and accumulate sums sequentially in that
    // same order, so table, CSV bytes and float-summation order are
    // identical to a `--jobs 1` run.
    let mut points = Vec::new();
    for model in presets::evaluation_models() {
        for dataset in DatasetSpec::evaluation_datasets() {
            for &system in &systems {
                points.push((model.clone(), dataset.clone(), system));
            }
        }
    }
    let outcomes = runner.run(&points, |_, (model, dataset, system)| {
        let mut cell = CellConfig::new(model.clone(), dataset.clone(), *system);
        cell.test_requests = requests;
        cell.max_decode = decode;
        cell.run_offline()
    });
    for ((model, dataset, system), out) in points.iter().zip(&outcomes) {
        let si = systems
            .iter()
            .position(|s| s == system)
            .expect("point systems come from the lineup");
        let a = &out.aggregate;
        table.row(vec![
            model.name.clone(),
            dataset.name.clone(),
            system.name().into(),
            format!("{:.1}", a.mean_ttft_ms),
            format!("{:.1}", a.mean_tpot_ms),
            format!("{:.1}%", a.hit_rate * 100.0),
        ]);
        let s = &mut sums[si];
        s.0 += a.mean_ttft_ms;
        s.1 += a.mean_tpot_ms;
        s.2 += a.hit_rate;
        s.3 += 1;
    }
    table.print();
    let _ = write_csv(&table, "fig9_overall");

    // §6.2 headline summary: fMoE's average reductions/improvements.
    let avg: Vec<(f64, f64, f64)> = sums
        .iter()
        .map(|s| {
            (
                s.0 / f64::from(s.3),
                s.1 / f64::from(s.3),
                s.2 / f64::from(s.3),
            )
        })
        .collect();
    let fmoe_idx = systems
        .iter()
        .position(|s| *s == System::Fmoe)
        .expect("lineup has fMoE");
    let (f_ttft, f_tpot, f_hit) = avg[fmoe_idx];

    let mut summary = Table::new(
        "Section 6.2 summary: fMoE vs each baseline (averages over all cells)",
        &[
            "baseline",
            "avg TTFT",
            "avg TPOT",
            "avg hit",
            "fMoE dTTFT",
            "fMoE dTPOT",
            "fMoE dhit",
        ],
    );
    for (si, &system) in systems.iter().enumerate() {
        if system == System::Fmoe {
            continue;
        }
        let (t, p, h) = avg[si];
        summary.row(vec![
            system.name().into(),
            format!("{t:.0} ms"),
            format!("{p:.0} ms"),
            format!("{:.1}%", h * 100.0),
            format!("{:+.0}%", (f_ttft / t - 1.0) * 100.0),
            format!("{:+.0}%", (f_tpot / p - 1.0) * 100.0),
            format!("{:+.0}%", (f_hit / h - 1.0) * 100.0),
        ]);
    }
    summary.row(vec![
        "fMoE (ours)".into(),
        format!("{f_ttft:.0} ms"),
        format!("{f_tpot:.0} ms"),
        format!("{:.1}%", f_hit * 100.0),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    summary.print();
    let _ = write_csv(&summary, "fig9_summary");

    println!("paper (§6.2): TTFT -44/-35/-33/-30%, TPOT -70/-61/-55/-48%,");
    println!("hit +147/+11/+34/+63% vs DeepSpeed/Mixtral-Off./ProMoE/MoE-Inf.");

    if trace {
        emit_trace_artifacts(requests, decode);
    }
}

/// Re-runs the first evaluation cell (fMoE) with the trace recorder on
/// and writes the Chrome-trace JSON, per-phase breakdown CSV, and
/// metrics CSV under `results/`.
fn emit_trace_artifacts(requests: usize, decode: u64) {
    let model = presets::evaluation_models().remove(0);
    let dataset = DatasetSpec::evaluation_datasets().remove(0);
    let mut cell = CellConfig::new(model, dataset, System::Fmoe);
    cell.test_requests = requests;
    cell.max_decode = decode;
    let traced = cell.run_offline_traced(1 << 20);

    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create results/: {e}");
        return;
    }
    let json = fmoe_trace::chrome_trace_json(&traced.records);
    match std::fs::write(dir.join("fig9_overall_trace.json"), &json) {
        Ok(()) => println!(
            "wrote results/fig9_overall_trace.json ({} events, {} dropped)",
            traced.records.len(),
            traced.dropped_records
        ),
        Err(e) => eprintln!("cannot write trace JSON: {e}"),
    }

    let mut phases = Table::new(
        "Figure 9 phase breakdown (fMoE, first cell, traced run)",
        &["phase", "total (ms)"],
    );
    for (phase, total_ns) in fmoe_trace::phase_totals(&traced.records) {
        phases.row(vec![
            phase.to_string(),
            format!("{:.3}", total_ns as f64 / 1e6),
        ]);
    }
    phases.print();
    let _ = write_csv(&phases, "fig9_overall_phases");

    match std::fs::write(
        dir.join("fig9_overall_metrics.csv"),
        traced.metrics.to_csv(),
    ) {
        Ok(()) => println!("wrote results/fig9_overall_metrics.csv"),
        Err(e) => eprintln!("cannot write metrics CSV: {e}"),
    }
}
