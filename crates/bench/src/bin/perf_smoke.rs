//! Perf smoke benchmark: wall-clock timings of fixed workloads, written
//! to `BENCH_perf.json` so CI can gate against the committed
//! `BENCH_baseline.json` (DESIGN.md §16).
//!
//! Scenarios:
//!
//! * `sweep_offline_jobs1` / `sweep_offline_jobsN` — the same fixed
//!   (model, dataset, system) cell sweep run through [`ParallelRunner`]
//!   sequentially and at `--jobs N` (default: available parallelism).
//!   The ratio is reported as `sweep_speedup`. The parallel leg only
//!   runs when the machine can actually run one: with a single effective
//!   worker (requested jobs clamped to one core) the speedup is
//!   reported as `null` and the gate skips it — time-slicing N threads
//!   on one core would only measure scheduler overhead.
//! * `matcher_semantic_fast` / `matcher_semantic_reference` — the
//!   structure-of-arrays slab kernel vs the per-entry reference scan
//!   over an Expert Map Store.
//! * `matcher_trajectory_incremental` — the streaming trajectory tracker
//!   over the same store.
//! * `sharded_cache_1shard` / `sharded_cache_16shards` — the
//!   lock-contention micro: N threads hammer a `ShardedExpertCache`
//!   with a fixed seeded access mix, against one global lock vs 16
//!   shard locks. The per-op throughput ratio is reported as
//!   `shard_speedup`.
//!
//! `--quick` shrinks every scenario to CI size (seconds, not minutes);
//! the JSON records the mode plus the machine's available parallelism,
//! and `perf_gate` only makes absolute wall-clock comparisons between
//! runs whose mode + parallelism fingerprints match.
//!
//! Wall-clock use is deliberate and confined to this binary: fmoe-lint's
//! FM002 allows `Instant` only in bench *binaries*, never in harness or
//! simulation code, so timings can never leak into simulated results.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin perf_smoke [--quick] [--jobs N]
//! ```

use fmoe::map::ExpertMap;
use fmoe::matcher::{Matcher, TrajectoryTracker};
use fmoe::store::ExpertMapStore;
use fmoe_bench::harness::{CellConfig, ParallelRunner, System};
use fmoe_bench::perf::{self, PerfRecord, PerfReport, RunMode};
use fmoe_cache::{PolicyKind, ShardedExpertCache};
use fmoe_model::gate::TokenSpan;
use fmoe_model::{presets, GateParams, GateSimulator, RequestRouting};
use fmoe_workload::DatasetSpec;
use std::hint::black_box;
use std::time::Instant;

fn time_iters<F: FnMut()>(iters: u64, mut f: F) -> (f64, f64) {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let iters_per_s = if wall_ms > 0.0 {
        iters as f64 / (wall_ms / 1e3)
    } else {
        f64::INFINITY
    };
    (wall_ms, iters_per_s)
}

/// The fixed offline sweep every run times: quick-sized fig9 cells.
fn sweep_points(mode: RunMode) -> Vec<(fmoe_model::ModelConfig, DatasetSpec, System)> {
    let models = presets::evaluation_models();
    let datasets = DatasetSpec::evaluation_datasets();
    let (models, datasets): (&[_], &[_]) = match mode {
        // Quick: one (model, dataset) pair — enough cells (one per
        // system) to exercise the runner without minute-scale CI cost.
        RunMode::Quick => (&models[..1], &datasets[..1]),
        RunMode::Full => (&models[..], &datasets[..]),
    };
    let mut points = Vec::new();
    for model in models {
        for dataset in datasets {
            for system in System::paper_lineup() {
                points.push((model.clone(), dataset.clone(), system));
            }
        }
    }
    points
}

fn time_sweep(jobs: usize, mode: RunMode) -> PerfRecord {
    let points = sweep_points(mode);
    let runner = ParallelRunner::new(jobs);
    let n = points.len() as u64;
    let (test_requests, max_decode) = match mode {
        RunMode::Quick => (2, 6),
        RunMode::Full => (4, 12),
    };
    let (wall_ms, _) = time_iters(1, || {
        let outcomes = runner.run(&points, |_, (model, dataset, system)| {
            let mut cell = CellConfig::new(model.clone(), dataset.clone(), *system);
            cell.test_requests = test_requests;
            cell.max_decode = max_decode;
            cell.run_offline()
        });
        black_box(outcomes.len());
    });
    PerfRecord {
        scenario: if jobs == 1 {
            "sweep_offline_jobs1".to_string()
        } else {
            "sweep_offline_jobsN".to_string()
        },
        wall_ms,
        iters_per_s: n as f64 / (wall_ms / 1e3),
        jobs: runner.jobs(),
    }
}

fn build_store(capacity: usize) -> (GateSimulator, ExpertMapStore) {
    let model = presets::mixtral_8x7b();
    let gate = GateSimulator::new(model.clone(), GateParams::for_model(&model));
    let mut store = ExpertMapStore::new(
        capacity,
        model.num_layers as usize,
        model.experts_per_layer as usize,
        3,
    );
    let mut i = 0u64;
    while store.len() < capacity {
        let routing = RequestRouting {
            cluster: i % 40,
            request_seed: i,
        };
        let iter = i % 6;
        let span = TokenSpan::single(32 + iter);
        let rows: Vec<Vec<f64>> = (0..model.num_layers)
            .map(|l| gate.iteration_distribution(routing, iter, l, span))
            .collect();
        store.insert(gate.semantic_embedding(routing, iter), ExpertMap::new(rows));
        i += 1;
    }
    (gate, store)
}

fn matcher_records(mode: RunMode) -> Vec<PerfRecord> {
    let (store_size, iters, traj_iters) = match mode {
        RunMode::Quick => (300, 400u64, 50u64),
        RunMode::Full => (1000, 2000, 200),
    };
    let (gate, store) = build_store(store_size);
    let query = gate.semantic_embedding(
        RequestRouting {
            cluster: 3,
            request_seed: 999,
        },
        2,
    );
    let (fast_ms, fast_ips) = time_iters(iters, || {
        black_box(Matcher::semantic_match(&store, black_box(&query)));
    });
    let (ref_ms, ref_ips) = time_iters(iters, || {
        black_box(Matcher::semantic_match_reference(&store, black_box(&query)));
    });

    let dist = gate.iteration_distribution(
        RequestRouting {
            cluster: 5,
            request_seed: 4242,
        },
        1,
        0,
        TokenSpan::single(16),
    );
    let (traj_ms, traj_ips) = time_iters(traj_iters, || {
        let mut tracker = TrajectoryTracker::new();
        tracker.reset(&store);
        for _ in 0..8 {
            tracker.observe_layer(&store, black_box(&dist));
        }
        black_box(tracker.best(&store));
    });

    vec![
        PerfRecord {
            scenario: "matcher_semantic_fast".to_string(),
            wall_ms: fast_ms,
            iters_per_s: fast_ips,
            jobs: 1,
        },
        PerfRecord {
            scenario: "matcher_semantic_reference".to_string(),
            wall_ms: ref_ms,
            iters_per_s: ref_ips,
            jobs: 1,
        },
        PerfRecord {
            scenario: "matcher_trajectory_incremental".to_string(),
            wall_ms: traj_ms,
            iters_per_s: traj_ips,
            jobs: 1,
        },
    ]
}

/// The lock-contention micro: `threads` workers each replay a seeded
/// access mix (record_access + insert-on-miss) against one shared
/// cache. Contention — and nothing else — separates the 1-shard and
/// 16-shard configurations: total ops, expert set, and per-thread
/// schedules are identical.
fn contention_record(shards: usize, threads: usize, mode: RunMode) -> PerfRecord {
    let ops_per_thread: usize = match mode {
        RunMode::Quick => 10_000,
        RunMode::Full => 50_000,
    };
    let model = presets::small_test_model();
    let cache =
        ShardedExpertCache::new(&model, model.expert_bytes() * 32, shards, PolicyKind::Sieve);
    let total_ops = (threads * ops_per_thread) as u64;
    let (wall_ms, _) = time_iters(1, || {
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = &cache;
                scope.spawn(move || {
                    // Splitmix64, seeded per thread: same schedule every run.
                    let mut state = 0x9e37 + t as u64;
                    for i in 0..ops_per_thread {
                        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                        let mut z = state;
                        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                        let e = fmoe_model::ExpertId::from_dense_index(
                            ((z ^ (z >> 31)) % 64) as usize,
                            model.experts_per_layer,
                        );
                        if !cache.record_access(e, i as u64) {
                            let _ = cache.insert(e, i as u64);
                        }
                    }
                });
            }
        });
        black_box(cache.stats());
    });
    PerfRecord {
        scenario: if shards == 1 {
            "sharded_cache_1shard".to_string()
        } else {
            "sharded_cache_16shards".to_string()
        },
        wall_ms,
        iters_per_s: total_ops as f64 / (wall_ms / 1e3),
        jobs: threads,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = if args.iter().any(|a| a == "--quick") {
        RunMode::Quick
    } else {
        RunMode::Full
    };
    let jobs = fmoe_bench::harness::jobs_from_args(args.iter().cloned());
    let parallelism = ParallelRunner::available_parallelism();
    let effective = jobs.min(parallelism);

    let seq = time_sweep(1, mode);
    let mut records = Vec::new();
    // A parallel leg needs at least two effective workers; on a
    // single-core machine the "speedup" would only measure time-slicing
    // overhead, so it is skipped and reported as null.
    let sweep_speedup = if effective > 1 {
        let par = time_sweep(effective, mode);
        let s = perf::speedup(seq.wall_ms, par.wall_ms);
        records.push(seq);
        records.push(par);
        s
    } else {
        records.push(seq);
        None
    };

    records.extend(matcher_records(mode));

    let threads = jobs.clamp(4, 16);
    let one_shard = contention_record(1, threads, mode);
    let many_shards = contention_record(16, threads, mode);
    let shard_speedup = perf::speedup(one_shard.wall_ms, many_shards.wall_ms);
    records.push(one_shard);
    records.push(many_shards);

    let report = PerfReport {
        jobs,
        parallelism,
        mode,
        sweep_speedup,
        shard_speedup,
        records,
    };

    println!(
        "perf_smoke (mode = {}, jobs = {jobs}, parallelism = {parallelism})",
        mode.as_str()
    );
    println!(
        "{:<32} {:>12} {:>14} {:>6}",
        "scenario", "wall_ms", "iters/s", "jobs"
    );
    for r in &report.records {
        println!(
            "{:<32} {:>12.3} {:>14.1} {:>6}",
            r.scenario, r.wall_ms, r.iters_per_s, r.jobs
        );
    }
    let show = |v: Option<f64>| match v {
        Some(s) => format!("{s:.2}x"),
        None => "n/a".to_string(),
    };
    println!("sweep speedup (jobs1 / jobsN): {}", show(sweep_speedup));
    println!(
        "shard speedup (1 shard / 16 shards): {}",
        show(shard_speedup)
    );

    match std::fs::write("BENCH_perf.json", report.to_json()) {
        Ok(()) => println!("wrote BENCH_perf.json"),
        Err(e) => eprintln!("cannot write BENCH_perf.json: {e}"),
    }

    // Informational baseline comparison (the enforcing step is the
    // `perf_gate` binary): print the delta table when a committed
    // baseline is available.
    match std::fs::read_to_string("BENCH_baseline.json") {
        Ok(text) => match PerfReport::from_json(&text) {
            Ok(baseline) => {
                let outcome = perf::gate(&baseline, &report, perf::DEFAULT_TOLERANCE);
                println!("\nvs BENCH_baseline.json:");
                print!("{}", outcome.delta_table());
            }
            Err(e) => eprintln!("BENCH_baseline.json unreadable: {e}"),
        },
        Err(_) => println!("no BENCH_baseline.json here; skipping comparison"),
    }
}
