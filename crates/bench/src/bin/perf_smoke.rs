//! Perf smoke benchmark: wall-clock timings of fixed workloads, written
//! to `BENCH_perf.json` so CI can archive a per-commit performance
//! baseline (DESIGN.md §12).
//!
//! Scenarios:
//!
//! * `sweep_offline_jobs1` / `sweep_offline_jobsN` — the same fixed
//!   (model, dataset, system) cell sweep run through [`ParallelRunner`]
//!   sequentially and at `--jobs N` (default: available parallelism).
//!   The ratio is reported as `sweep_speedup`; on a multi-core CI runner
//!   it should comfortably exceed 2× at `--jobs 4`.
//! * `matcher_semantic_fast` / `matcher_semantic_reference` — the
//!   structure-of-arrays slab kernel vs the per-entry reference scan over
//!   a 1000-entry Expert Map Store.
//! * `matcher_trajectory_incremental` — the streaming trajectory tracker
//!   over the same store.
//! * `sharded_cache_1shard` / `sharded_cache_16shards` — the
//!   lock-contention micro: N threads hammer a `ShardedExpertCache`
//!   with a fixed seeded access mix, against one global lock vs 16
//!   shard locks. The per-op throughput ratio is reported as
//!   `shard_speedup`.
//!
//! Wall-clock use is deliberate and confined to this binary: fmoe-lint's
//! FM002 allows `Instant` only in bench *binaries*, never in harness or
//! simulation code, so timings can never leak into simulated results.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin perf_smoke [--jobs N]
//! ```

use fmoe::map::ExpertMap;
use fmoe::matcher::{Matcher, TrajectoryTracker};
use fmoe::store::ExpertMapStore;
use fmoe_bench::harness::{CellConfig, ParallelRunner, System};
use fmoe_cache::{PolicyKind, ShardedExpertCache};
use fmoe_model::gate::TokenSpan;
use fmoe_model::{presets, GateParams, GateSimulator, RequestRouting};
use fmoe_workload::DatasetSpec;
use std::hint::black_box;
use std::time::Instant;

/// One timed scenario.
struct PerfRecord {
    scenario: &'static str,
    wall_ms: f64,
    iters_per_s: f64,
    jobs: usize,
}

fn time_iters<F: FnMut()>(iters: u64, mut f: F) -> (f64, f64) {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let iters_per_s = if wall_ms > 0.0 {
        iters as f64 / (wall_ms / 1e3)
    } else {
        f64::INFINITY
    };
    (wall_ms, iters_per_s)
}

/// The fixed offline sweep every run times: quick-sized fig9 cells.
fn sweep_points() -> Vec<(fmoe_model::ModelConfig, DatasetSpec, System)> {
    let mut points = Vec::new();
    for model in presets::evaluation_models() {
        for dataset in DatasetSpec::evaluation_datasets() {
            for system in System::paper_lineup() {
                points.push((model.clone(), dataset.clone(), system));
            }
        }
    }
    points
}

fn time_sweep(jobs: usize) -> PerfRecord {
    let points = sweep_points();
    let runner = ParallelRunner::new(jobs);
    let n = points.len() as u64;
    let (wall_ms, _) = time_iters(1, || {
        let outcomes = runner.run(&points, |_, (model, dataset, system)| {
            let mut cell = CellConfig::new(model.clone(), dataset.clone(), *system);
            cell.test_requests = 4;
            cell.max_decode = 12;
            cell.run_offline()
        });
        black_box(outcomes.len());
    });
    PerfRecord {
        scenario: if jobs == 1 {
            "sweep_offline_jobs1"
        } else {
            "sweep_offline_jobsN"
        },
        wall_ms,
        iters_per_s: n as f64 / (wall_ms / 1e3),
        jobs,
    }
}

fn build_store(capacity: usize) -> (GateSimulator, ExpertMapStore) {
    let model = presets::mixtral_8x7b();
    let gate = GateSimulator::new(model.clone(), GateParams::for_model(&model));
    let mut store = ExpertMapStore::new(
        capacity,
        model.num_layers as usize,
        model.experts_per_layer as usize,
        3,
    );
    let mut i = 0u64;
    while store.len() < capacity {
        let routing = RequestRouting {
            cluster: i % 40,
            request_seed: i,
        };
        let iter = i % 6;
        let span = TokenSpan::single(32 + iter);
        let rows: Vec<Vec<f64>> = (0..model.num_layers)
            .map(|l| gate.iteration_distribution(routing, iter, l, span))
            .collect();
        store.insert(gate.semantic_embedding(routing, iter), ExpertMap::new(rows));
        i += 1;
    }
    (gate, store)
}

fn matcher_records() -> Vec<PerfRecord> {
    let (gate, store) = build_store(1000);
    let query = gate.semantic_embedding(
        RequestRouting {
            cluster: 3,
            request_seed: 999,
        },
        2,
    );
    let iters = 2000u64;
    let (fast_ms, fast_ips) = time_iters(iters, || {
        black_box(Matcher::semantic_match(&store, black_box(&query)));
    });
    let (ref_ms, ref_ips) = time_iters(iters, || {
        black_box(Matcher::semantic_match_reference(&store, black_box(&query)));
    });

    let dist = gate.iteration_distribution(
        RequestRouting {
            cluster: 5,
            request_seed: 4242,
        },
        1,
        0,
        TokenSpan::single(16),
    );
    let traj_iters = 200u64;
    let (traj_ms, traj_ips) = time_iters(traj_iters, || {
        let mut tracker = TrajectoryTracker::new();
        tracker.reset(&store);
        for _ in 0..8 {
            tracker.observe_layer(&store, black_box(&dist));
        }
        black_box(tracker.best(&store));
    });

    vec![
        PerfRecord {
            scenario: "matcher_semantic_fast",
            wall_ms: fast_ms,
            iters_per_s: fast_ips,
            jobs: 1,
        },
        PerfRecord {
            scenario: "matcher_semantic_reference",
            wall_ms: ref_ms,
            iters_per_s: ref_ips,
            jobs: 1,
        },
        PerfRecord {
            scenario: "matcher_trajectory_incremental",
            wall_ms: traj_ms,
            iters_per_s: traj_ips,
            jobs: 1,
        },
    ]
}

/// The lock-contention micro: `threads` workers each replay a seeded
/// access mix (record_access + insert-on-miss) against one shared
/// cache. Contention — and nothing else — separates the 1-shard and
/// 16-shard configurations: total ops, expert set, and per-thread
/// schedules are identical.
fn contention_record(shards: usize, threads: usize) -> PerfRecord {
    const OPS_PER_THREAD: usize = 50_000;
    let model = presets::small_test_model();
    let cache =
        ShardedExpertCache::new(&model, model.expert_bytes() * 32, shards, PolicyKind::Sieve);
    let total_ops = (threads * OPS_PER_THREAD) as u64;
    let (wall_ms, _) = time_iters(1, || {
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = &cache;
                scope.spawn(move || {
                    // Splitmix64, seeded per thread: same schedule every run.
                    let mut state = 0x9e37 + t as u64;
                    for i in 0..OPS_PER_THREAD {
                        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                        let mut z = state;
                        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                        let e = fmoe_model::ExpertId::from_dense_index(
                            ((z ^ (z >> 31)) % 64) as usize,
                            model.experts_per_layer,
                        );
                        if !cache.record_access(e, i as u64) {
                            let _ = cache.insert(e, i as u64);
                        }
                    }
                });
            }
        });
        black_box(cache.stats());
    });
    PerfRecord {
        scenario: if shards == 1 {
            "sharded_cache_1shard"
        } else {
            "sharded_cache_16shards"
        },
        wall_ms,
        iters_per_s: total_ops as f64 / (wall_ms / 1e3),
        jobs: threads,
    }
}

/// Hand-rolled JSON: the workspace deliberately has no JSON dependency,
/// and the schema is flat enough that formatting is trivial.
fn to_json(records: &[PerfRecord], jobs: usize, sweep_speedup: f64, shard_speedup: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"perf_smoke\",\n");
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"sweep_speedup\": {sweep_speedup:.3},\n"));
    out.push_str(&format!("  \"shard_speedup\": {shard_speedup:.3},\n"));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"wall_ms\": {:.3}, \"iters_per_s\": {:.3}, \"jobs\": {}}}{}\n",
            r.scenario,
            r.wall_ms,
            r.iters_per_s,
            r.jobs,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let jobs = fmoe_bench::harness::jobs_from_args(std::env::args().skip(1));

    let seq = time_sweep(1);
    let par = time_sweep(jobs.max(2));
    let sweep_speedup = if par.wall_ms > 0.0 {
        seq.wall_ms / par.wall_ms
    } else {
        f64::INFINITY
    };

    let mut records = vec![seq, par];
    records.extend(matcher_records());

    let threads = jobs.clamp(4, 16);
    let one_shard = contention_record(1, threads);
    let many_shards = contention_record(16, threads);
    let shard_speedup = if one_shard.wall_ms > 0.0 {
        one_shard.wall_ms / many_shards.wall_ms
    } else {
        f64::INFINITY
    };
    records.push(one_shard);
    records.push(many_shards);

    println!("perf_smoke (jobs = {jobs})");
    println!(
        "{:<32} {:>12} {:>14} {:>6}",
        "scenario", "wall_ms", "iters/s", "jobs"
    );
    for r in &records {
        println!(
            "{:<32} {:>12.3} {:>14.1} {:>6}",
            r.scenario, r.wall_ms, r.iters_per_s, r.jobs
        );
    }
    println!("sweep speedup (jobs1 / jobsN): {sweep_speedup:.2}x");
    println!("shard speedup (1 shard / 16 shards): {shard_speedup:.2}x");

    let json = to_json(&records, jobs, sweep_speedup, shard_speedup);
    match std::fs::write("BENCH_perf.json", &json) {
        Ok(()) => println!("wrote BENCH_perf.json"),
        Err(e) => eprintln!("cannot write BENCH_perf.json: {e}"),
    }
}
