//! Confidence companion to Figure 9: the headline comparison repeated
//! over several independent router seeds, reporting mean ± std so the
//! orderings can be checked against run-to-run variance (the paper's
//! testbed runs average over requests; our simulator can also average
//! over *worlds*).
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin fig9_confidence [--seeds N]
//! ```

use fmoe_bench::harness::{CellConfig, System};
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::presets;
use fmoe_stats::Summary;
use fmoe_workload::DatasetSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds: u64 = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    let mut table = Table::new(
        &format!("Figure 9 with confidence: mean +/- std over {seeds} router seeds (Mixtral-8x7B, LMSYS)"),
        &["system", "TTFT (ms)", "TPOT (ms)", "hit rate"],
    );
    let model = presets::mixtral_8x7b();
    let mut fmoe_tpots: Vec<f64> = Vec::new();
    let mut baseline_means: Vec<f64> = Vec::new();

    for system in System::paper_lineup() {
        let mut ttft = Summary::new();
        let mut tpot = Summary::new();
        let mut hit = Summary::new();
        for seed in 0..seeds {
            let mut cell = CellConfig::new(model.clone(), DatasetSpec::lmsys_chat(), system);
            cell.test_requests = 8;
            cell.max_decode = 16;
            cell.gate_seed = 0x5EED_0000 + seed * 0x1111;
            let a = cell.run_offline().aggregate;
            ttft.record(a.mean_ttft_ms);
            tpot.record(a.mean_tpot_ms);
            hit.record(a.hit_rate);
            if system == System::Fmoe {
                fmoe_tpots.push(a.mean_tpot_ms);
            }
        }
        if system != System::Fmoe {
            baseline_means.push(tpot.mean());
        }
        table.row(vec![
            system.name().into(),
            format!("{:.0} +/- {:.0}", ttft.mean(), ttft.std_dev()),
            format!("{:.0} +/- {:.0}", tpot.mean(), tpot.std_dev()),
            format!(
                "{:.1}% +/- {:.1}",
                hit.mean() * 100.0,
                hit.std_dev() * 100.0
            ),
        ]);
    }
    table.print();
    let _ = write_csv(&table, "fig9_confidence");

    // Separation check: fMoE's worst seed vs the best baseline's mean.
    let fmoe_worst = fmoe_tpots.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let best_baseline = baseline_means.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "fMoE's worst-seed TPOT ({fmoe_worst:.0} ms) vs best baseline mean ({best_baseline:.0} ms): \
         the ordering is {} to seed choice.",
        if fmoe_worst < best_baseline { "robust" } else { "sensitive" }
    );
}
