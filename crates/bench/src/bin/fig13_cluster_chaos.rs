//! Figure 13 (cluster extension): fleet behaviour under replica chaos —
//! crash/recovery schedules, health-aware failover routing, and warm
//! restart.
//!
//! Each cell replays the same clustered workload through a 3-replica
//! [`fmoe_cluster::Cluster`] with a deterministic, builder-based
//! [`fmoe_faults::ReplicaFaultSchedule`]: `intensity` scales how many
//! replicas crash (replica 0 is always spared so a failover target and
//! warm-restart donor exist), with every crash window placed well inside
//! the arrival span so recovery is observable. The sweep crosses crash
//! intensity × routing policy × warmup mode:
//!
//! * **cold** restarts rejoin immediately with an empty cache and a
//!   reset Expert Map Store;
//! * **donor-warmed** restarts copy the healthiest peer's store and
//!   cache residency first, paying the copy through `fmoe-memsim`
//!   before rejoining.
//!
//! The headline: donor-warmed recovery climbs back to the pre-crash
//! fleet hit rate in fewer post-recovery requests than a cold restart —
//! asserted for every cell — at the price of warmup bytes and a later
//! rejoin. Goodput, availability, and the fleet P99 show what the
//! crashes themselves cost.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin fig13_cluster_chaos [--quick] [--jobs N]
//! ```
//!
//! `--jobs N` fans the independent cells across worker threads; output
//! bytes are identical to a sequential run. The single-replica analogue
//! (fault injection inside one engine's transfer fabric) is
//! `chaos_faults`.

use fmoe::predictor::HistoryRequest;
use fmoe::{FmoeConfig, FmoePredictor};
use fmoe_bench::harness::ParallelRunner;
use fmoe_bench::report::{write_csv, Table};
use fmoe_cluster::{AffinityConfig, Cluster, FailoverConfig, RoutingPolicy, WarmupMode};
use fmoe_faults::ReplicaFaultSchedule;
use fmoe_memsim::Topology;
use fmoe_model::{presets, GateParams, GateSimulator, GpuSpec, ModelConfig, RequestRouting};
use fmoe_serving::{EngineBuilder, EngineConfig};
use fmoe_workload::{AzureTraceSpec, DatasetSpec, TraceEvent};

const REPLICAS: usize = 3;

/// A restarted replica counts as recovered once its cumulative
/// post-restart hit rate reaches this fraction of the pre-crash fleet
/// hit rate. Exact parity is unreachable in general: while a replica is
/// down, affinity routing migrates its semantic shard to the survivors,
/// so its post-restart traffic mix differs from the one that produced
/// the pre-crash number.
const RECOVERY_MARGIN: f64 = 0.95;

fn model() -> ModelConfig {
    presets::small_test_model()
}

fn gate() -> GateSimulator {
    let m = model();
    GateSimulator::new(m.clone(), GateParams::for_model(&m))
}

/// Fleet-sized arrival groups: requests land three at a time (one per
/// replica under any load-balancing tie-break) with headroom between
/// groups, so the cells measure fault handling rather than saturation
/// and no replica starves on tie-breaks. The group right before each
/// crash window slides to 1 ms before it, so every crash interrupts
/// queued work and exercises failover.
fn trace(num_requests: u64, spacing_ns: u64, crash_starts: &[u64]) -> Vec<TraceEvent> {
    let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::lmsys_chat());
    spec.num_requests = num_requests;
    let mut events = spec.generate();
    let group_ns = spacing_ns * REPLICAS as u64;
    for (i, e) in events.iter_mut().enumerate() {
        let base = (i as u64 / REPLICAS as u64) * group_ns;
        e.arrival_ns = base;
        for &start in crash_starts {
            if base < start && base + group_ns >= start {
                e.arrival_ns = start - 1_000_000;
            }
        }
    }
    events
}

/// A replica predictor warmed on its shard of the dataset's semantic
/// clusters, as in `fig12_cluster_scaling`.
fn warmed_predictor(replica: usize) -> FmoePredictor {
    let m = model();
    let mut p = FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m));
    let clusters = DatasetSpec::lmsys_chat().num_clusters;
    let hist: Vec<HistoryRequest> = (0..clusters)
        .filter(|c| (*c as usize) % REPLICAS == replica)
        .map(|c| HistoryRequest {
            routing: RequestRouting {
                cluster: c,
                request_seed: 7_000 + c,
            },
            prompt_tokens: 32,
            iterations: 3,
        })
        .collect();
    p.populate_from_history(&gate(), &hist, 3);
    p
}

/// Deterministic crash plan for one cell: `intensity` in (0, 1] scales
/// how many of the non-donor replicas crash. Windows are staggered
/// through the middle of the arrival span so every crash interrupts
/// in-flight work and every recovery leaves arrivals to measure with.
fn crash_plan(intensity: f64, span_ns: u64) -> (ReplicaFaultSchedule, Vec<(usize, u64, u64)>) {
    let crashes = ((intensity * (REPLICAS - 1) as f64).round() as usize).clamp(1, REPLICAS - 1);
    // Outage length grows with intensity as well, so cells that round to
    // the same crash count still sweep distinct downtime fractions.
    let len = (span_ns as f64 * 0.1 * (0.5 + intensity)) as u64;
    let mut windows = Vec::new();
    let mut b = ReplicaFaultSchedule::builder(13);
    for i in 0..crashes {
        let replica = 1 + i % (REPLICAS - 1);
        let start = span_ns * (4 + 3 * i as u64) / 20;
        b = b.crash(replica as u32, start, start + len);
        windows.push((replica, start, start + len));
    }
    (b.build(), windows)
}

/// What one (intensity, policy, warmup) cell contributes to the report.
struct CellOutcome {
    served: usize,
    shed: usize,
    goodput: f64,
    mean_availability: f64,
    fleet_hit_rate: f64,
    p99_ms: f64,
    failed_over: u64,
    warmup_mb: f64,
    /// Post-recovery requests until every crashed replica's cumulative
    /// post-restart hit rate reached [`RECOVERY_MARGIN`] of the
    /// pre-crash fleet hit rate; `requests + 1` when one never did.
    recovery_requests: u64,
    cdf_points: Vec<(f64, f64)>,
}

fn run_cell(
    intensity: f64,
    policy: RoutingPolicy,
    warmup: WarmupMode,
    requests: u64,
) -> CellOutcome {
    let m = model();
    let spacing_ns = 5_000_000;
    let span_ns = requests * spacing_ns;
    let (schedule, windows) = crash_plan(intensity, span_ns);
    let first_crash = windows.iter().map(|&(_, s, _)| s).min().unwrap_or(0);
    let crash_starts: Vec<u64> = windows.iter().map(|&(_, s, _)| s).collect();
    let events = trace(requests, spacing_ns, &crash_starts);

    let mut cluster = Cluster::new(gate(), policy, None);
    for replica in 0..REPLICAS {
        let config = EngineConfig {
            cache_budget_bytes: m.expert_bytes() * 16,
            preload_all: false,
            max_decode_iterations: Some(4),
            context_collection_ns: 10_000,
            framework_overhead_per_layer_ns: 50_000,
            ..EngineConfig::paper_default()
        };
        let engine = EngineBuilder::new(gate(), GpuSpec::rtx_3090(), Topology::single_gpu(8 << 30))
            .config(config);
        cluster.add_replica(engine, Box::new(warmed_predictor(replica)));
    }
    cluster.set_replica_fault_schedule(
        schedule,
        FailoverConfig {
            max_redispatches: 3,
            warmup,
        },
    );

    // Dispatch one event at a time so the recovery climb is observable:
    // snapshot the fleet hit rate just before the first crash, then for
    // each crashed replica count the requests arriving after its
    // recovery until its cumulative post-restart hit rate climbs back
    // to that pre-crash level.
    let mut pre_crash_hit: Option<f64> = None;
    let mut recovered_at: Vec<Option<u64>> = vec![None; windows.len()];
    let mut post_recovery_seen: Vec<u64> = vec![0; windows.len()];
    let mut report = None;
    for event in &events {
        if event.arrival_ns >= first_crash && pre_crash_hit.is_none() {
            let so_far: Option<&fmoe_cluster::ClusterReport> = report.as_ref();
            pre_crash_hit = Some(so_far.map_or(0.0, |r| r.fleet_hit_rate()));
        }
        report = Some(cluster.dispatch(std::slice::from_ref(event)));
        for (i, &(replica, _, end)) in windows.iter().enumerate() {
            if event.arrival_ns <= end {
                continue;
            }
            post_recovery_seen[i] += 1;
            if recovered_at[i].is_none() {
                let stats = cluster
                    .replica_engine(replica)
                    .expect("replica exists")
                    .cache_stats();
                if std::env::var("FIG13_DEBUG").is_ok() {
                    eprintln!(
                        "dbg {} {} i={intensity} w{i} r{replica} seen={} acc={} hr={:.4} thr={:.4}",
                        policy.name(),
                        warmup.name(),
                        post_recovery_seen[i],
                        stats.accesses(),
                        stats.hit_rate(),
                        pre_crash_hit.unwrap_or(0.0)
                    );
                }
                let threshold = RECOVERY_MARGIN * pre_crash_hit.unwrap_or(0.0);
                if stats.accesses() > 0 && stats.hit_rate() >= threshold {
                    recovered_at[i] = Some(post_recovery_seen[i]);
                }
            }
        }
    }
    let report = report.expect("at least one event dispatched");
    assert!(
        report.accounting_balances(),
        "lost requests at intensity {intensity}, {}, {}",
        policy.name(),
        warmup.name()
    );
    assert_eq!(report.failover.crashes as usize, windows.len());
    assert_eq!(report.failover.recoveries as usize, windows.len());

    // Availability from the schedule itself: fraction of the arrival
    // span each replica was up, averaged over the fleet.
    let downtime: u64 = windows
        .iter()
        .map(|&(_, s, e)| e.min(span_ns).saturating_sub(s.min(span_ns)))
        .sum();
    let mean_availability = 1.0 - downtime as f64 / (span_ns as f64 * REPLICAS as f64);

    let recovery_requests = recovered_at
        .iter()
        .map(|r| r.unwrap_or(requests + 1))
        .max()
        .unwrap_or(0);
    let cdf = report.fleet_latency_cdf();
    CellOutcome {
        served: report.total_served(),
        shed: report.total_shed(),
        goodput: report.goodput(),
        mean_availability,
        fleet_hit_rate: report.fleet_hit_rate(),
        p99_ms: report.fleet_latency_quantile_ns(0.99).unwrap_or(0.0) / 1e6,
        failed_over: report.failover.failed_over,
        warmup_mb: report.failover.warmup_bytes as f64 / 1e6,
        recovery_requests,
        cdf_points: cdf
            .points(33)
            .into_iter()
            .map(|(ns, frac)| (ns / 1e6, frac))
            .collect(),
    }
}

fn policies() -> [RoutingPolicy; 3] {
    [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::JoinShortestQueue,
        RoutingPolicy::SemanticAffinity(AffinityConfig::default()),
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let runner = ParallelRunner::from_args();
    let requests: u64 = if quick { 48 } else { 96 };
    let intensities: &[f64] = if quick {
        &[0.5, 1.0]
    } else {
        &[0.5, 0.75, 1.0]
    };

    let mut points = Vec::new();
    for &intensity in intensities {
        for policy in policies() {
            for warmup in [WarmupMode::Cold, WarmupMode::DonorWarmed] {
                points.push((intensity, policy, warmup));
            }
        }
    }
    let outcomes = runner.run(&points, |_, &(intensity, policy, warmup)| {
        run_cell(intensity, policy, warmup, requests)
    });

    let mut table = Table::new(
        "Figure 13: cluster chaos — crash intensity vs failover and warm restart",
        &[
            "intensity",
            "policy",
            "warmup",
            "served",
            "shed",
            "goodput",
            "avail",
            "hit_rate",
            "p99_ms",
            "failovers",
            "warmup_mb",
            "recovery_reqs",
        ],
    );
    let mut cdf_table = Table::new(
        "Figure 13 raw fleet latency CDF points",
        &["intensity", "policy", "warmup", "latency_ms", "fraction"],
    );
    for ((intensity, policy, warmup), outcome) in points.iter().zip(&outcomes) {
        table.row(vec![
            format!("{intensity:.2}"),
            policy.name().into(),
            warmup.name().into(),
            outcome.served.to_string(),
            outcome.shed.to_string(),
            format!("{:.4}", outcome.goodput),
            format!("{:.4}", outcome.mean_availability),
            format!("{:.4}", outcome.fleet_hit_rate),
            format!("{:.1}", outcome.p99_ms),
            outcome.failed_over.to_string(),
            format!("{:.2}", outcome.warmup_mb),
            outcome.recovery_requests.to_string(),
        ]);
        for &(ms, frac) in &outcome.cdf_points {
            cdf_table.row(vec![
                format!("{intensity:.2}"),
                policy.name().into(),
                warmup.name().into(),
                format!("{ms:.3}"),
                format!("{frac:.6}"),
            ]);
        }
    }
    table.print();

    // The chaos claim under test: seeding a restarted replica from the
    // healthiest peer wins back the pre-crash fleet hit rate in no more
    // post-recovery requests than a cold restart, in every cell.
    for &intensity in intensities {
        for policy in policies() {
            let cell = |wanted: WarmupMode| {
                points
                    .iter()
                    .zip(&outcomes)
                    .find(|((i, p, w), _)| {
                        *i == intensity && p.name() == policy.name() && *w == wanted
                    })
                    .map(|(_, o)| (o.recovery_requests, o.warmup_mb))
                    .expect("cell exists")
            };
            let (cold, _) = cell(WarmupMode::Cold);
            let (warm, warm_mb) = cell(WarmupMode::DonorWarmed);
            assert!(
                warm < cold,
                "donor-warmed restart must recover the pre-crash fleet hit rate in fewer \
                 post-recovery requests than cold at intensity {intensity}, {}: \
                 {warm} vs {cold}",
                policy.name()
            );
            assert!(warm_mb > 0.0, "donor-warmed restart copies real bytes");
            println!(
                "recovery @ intensity {intensity:.2}, {}: donor-warmed {warm} vs cold {cold} \
                 post-recovery requests ({warm_mb:.2} MB copied)",
                policy.name()
            );
        }
    }

    let path = write_csv(&table, "fig13_cluster_chaos").expect("write CSV");
    println!("\nwrote {}", path.display());
    let path = write_csv(&cdf_table, "fig13_cluster_chaos_cdf").expect("write CSV");
    println!("wrote {}", path.display());
}
