//! Chaos benchmark: online serving under injected faults, sweeping fault
//! intensity × mitigation policy.
//!
//! Each cell replays the same Azure-style trace through an fMoE engine
//! while a seeded [`FaultSchedule`] degrades PCIe links, stalls them,
//! drops transfers, and squeezes the cache budget. Policies:
//!
//! * **none** — faults hit an unprotected engine (retry/backoff only).
//! * **deadline** — on-demand loads that cannot meet a deadline fall
//!   back to half-precision payloads.
//! * **shed** — requests whose queueing delay blows the SLO are rejected.
//! * **degrade** — SLO violators are served with half-precision
//!   on-demand loads instead of being shed.
//!
//! Emits a latency/goodput table plus raw CDF points as CSV. The shape
//! to look for: tail latency grows with intensity but stays *bounded*
//! under every mitigation, shed/degraded counters reconcile with the
//! trace length, and nothing hangs or panics even at intensity 0.9.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin chaos_faults [--quick] [--jobs N]
//! ```
//!
//! `--jobs N` fans the independent (intensity, policy) cells across
//! worker threads; output bytes are identical to a sequential run.
//!
//! This bench injects faults *inside one engine* — degraded links,
//! dropped transfers, squeezed budgets. Its fleet-level counterpart is
//! `fig13_cluster_chaos`, where whole replicas crash, drain, and restart
//! (cold or donor-warmed) behind health-aware routing; see DESIGN.md §14.

use fmoe_bench::harness::{CellConfig, ParallelRunner, System};
use fmoe_bench::report::{write_csv, Table};
use fmoe_memsim::clock::SECOND;
use fmoe_memsim::FaultSchedule;
use fmoe_model::presets;
use fmoe_serving::online::{serve, ServeOptions, SloPolicy};
use fmoe_stats::EmpiricalCdf;
use fmoe_workload::{AzureTraceSpec, DatasetSpec};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    None,
    Deadline,
    Shed,
    Degrade,
}

impl Policy {
    fn all() -> [Policy; 4] {
        [
            Policy::None,
            Policy::Deadline,
            Policy::Shed,
            Policy::Degrade,
        ]
    }

    fn name(self) -> &'static str {
        match self {
            Policy::None => "none",
            Policy::Deadline => "deadline",
            Policy::Shed => "slo-shed",
            Policy::Degrade => "slo-degrade",
        }
    }
}

/// Everything one (intensity, policy) cell contributes to the report,
/// computed inside the worker and formatted afterwards on the main
/// thread.
struct ChaosOutcome {
    served: usize,
    shed: usize,
    degraded_serves: u64,
    goodput: f64,
    latencies: Vec<f64>,
    retries: u64,
    faults_injected: u64,
    failed_jobs: u64,
    backoff_ns: u64,
    degraded_loads: u64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let runner = ParallelRunner::from_args();
    let num_requests = if quick { 10 } else { 32 };
    let intensities: &[f64] = if quick {
        &[0.0, 0.6]
    } else {
        &[0.0, 0.3, 0.6, 0.9]
    };
    // Queueing budget for the SLO policies; generous enough that a
    // fault-free run serves everything, tight enough that heavy faults
    // force shedding/degradation.
    let slo_queueing_ns = 60 * SECOND;

    let model = presets::evaluation_models().remove(0);
    let mut table = Table::new(
        "Chaos: online latency and goodput under injected faults (fMoE engine)",
        &[
            "intensity",
            "policy",
            "served",
            "shed",
            "degraded",
            "goodput",
            "p50_s",
            "p99_s",
            "retries",
            "faults",
            "failed",
            "backoff_ms",
            "degr_loads",
        ],
    );
    let mut cdf_points = Table::new(
        "Chaos raw latency CDF points",
        &["intensity", "policy", "latency_s", "fraction"],
    );

    // Each (intensity, policy) cell builds its own engine, schedule and
    // trace, so the sweep fans out across the runner's workers; rows are
    // then emitted in sweep order for byte-identical output.
    let mut sweep = Vec::new();
    for &intensity in intensities {
        for policy in Policy::all() {
            sweep.push((intensity, policy));
        }
    }
    let outcomes = runner.run(&sweep, |_, &(intensity, policy)| {
        let mut cell = CellConfig::new(model.clone(), DatasetSpec::lmsys_chat(), System::Fmoe);
        cell.max_decode = if quick { 8 } else { 16 };
        cell.warmup_requests = 0;
        if policy == Policy::Deadline {
            // Four nominal expert transfers (PCIe 4.0 ×16 moves
            // ~32 B/ns): slack for queueing, but far less than a
            // stalled or 10×-degraded link needs.
            cell.on_demand_deadline_ns = Some(4 * (model.expert_bytes() / 32).max(1));
        }
        let gate = cell.gate();
        let mut predictor = cell.predictor(&gate, &[]);
        let mut engine = cell.engine(gate);

        let num_gpus = cell.topology.num_gpus;
        let horizon = 10 * 60 * SECOND;
        engine.set_fault_schedule(FaultSchedule::synthetic(
            0xC4A0_5000 + (intensity * 100.0) as u64,
            intensity,
            horizon,
            num_gpus,
        ));

        let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::lmsys_chat());
        spec.num_requests = num_requests;
        let trace = spec.generate();

        let slo = match policy {
            Policy::Shed => Some(SloPolicy::shed(slo_queueing_ns)),
            Policy::Degrade => Some(SloPolicy::degrade(slo_queueing_ns)),
            Policy::None | Policy::Deadline => None,
        };
        let options = match slo {
            Some(policy) => ServeOptions::fcfs().with_slo(policy),
            None => ServeOptions::fcfs(),
        };
        let report = serve(&mut engine, &trace, predictor.as_mut(), &options)
            .expect("fcfs serving is infallible");
        assert_eq!(
            report.results.len() + report.shed.len(),
            trace.len(),
            "every trace request is served or shed"
        );

        let stats = engine.transfer_stats();
        ChaosOutcome {
            served: report.results.len(),
            shed: report.shed.len(),
            degraded_serves: report.degraded_serves,
            goodput: report.goodput(),
            latencies: report
                .results
                .iter()
                .map(|r| r.request_latency_ns() as f64 / 1e9)
                .collect(),
            retries: stats.retries,
            faults_injected: stats.faults_injected,
            failed_jobs: stats.failed_jobs,
            backoff_ns: stats.backoff_ns,
            degraded_loads: report
                .results
                .iter()
                .map(|r| r.metrics.degraded_loads)
                .sum(),
        }
    });

    for (&(intensity, policy), out) in sweep.iter().zip(&outcomes) {
        let cdf = EmpiricalCdf::new(out.latencies.clone());
        table.row(vec![
            format!("{intensity:.1}"),
            policy.name().into(),
            format!("{}", out.served),
            format!("{}", out.shed),
            format!("{}", out.degraded_serves),
            format!("{:.2}", out.goodput),
            format!("{:.1}", cdf.quantile(0.50).unwrap_or(0.0)),
            format!("{:.1}", cdf.quantile(0.99).unwrap_or(0.0)),
            format!("{}", out.retries),
            format!("{}", out.faults_injected),
            format!("{}", out.failed_jobs),
            format!("{:.1}", out.backoff_ns as f64 / 1e6),
            format!("{}", out.degraded_loads),
        ]);
        for (v, f) in cdf.points(24) {
            cdf_points.row(vec![
                format!("{intensity:.1}"),
                policy.name().into(),
                format!("{v:.2}"),
                format!("{f:.4}"),
            ]);
        }
    }

    table.print();
    let _ = write_csv(&table, "chaos_goodput");
    let _ = write_csv(&cdf_points, "chaos_latency_cdf");
    println!("expected shape: as intensity rises, 'none' p99 balloons while the");
    println!("mitigations keep it bounded — shedding trades goodput for latency,");
    println!("degrade/deadline trade precision for it. (The SLO policies also");
    println!("act at intensity 0.0: the trace itself is bursty enough to queue");
    println!("past the budget.)");
}
