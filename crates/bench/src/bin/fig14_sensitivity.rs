//! Figure 14: sensitivity to Expert Map Store capacity and batch size.
//!
//! * 14a — mean semantic and trajectory similarity scores found during
//!   serving, as the store capacity grows. Scores climb steeply below
//!   ~1K maps, then flatten (why the paper — and we — default to 1K).
//! * 14b — TTFT/TPOT of fMoE and three baselines at batch sizes 1..4
//!   (Mixtral-8×7B, LMSYS-like).
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin fig14_sensitivity [--capacity|--batch]
//! ```

use fmoe::map::ExpertMap;
use fmoe::matcher::{Matcher, TrajectoryTracker};
use fmoe::store::ExpertMapStore;
use fmoe_bench::harness::{CellConfig, System};
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::gate::TokenSpan;
use fmoe_model::{presets, GateParams, GateSimulator};
use fmoe_workload::{split, DatasetSpec};

const CAPACITIES: [usize; 7] = [32, 64, 128, 256, 512, 1024, 2048];

fn capacity_sweep() {
    let mut table = Table::new(
        "Figure 14a: mean similarity scores vs Expert Map Store capacity",
        &[
            "model", "score", "C=32", "C=64", "C=128", "C=256", "C=512", "C=1024", "C=2048",
        ],
    );
    for model in presets::evaluation_models() {
        let gate = GateSimulator::new(model.clone(), GateParams::for_model(&model));
        let dataset = DatasetSpec::lmsys_chat();
        let prompts = dataset.prompts(700);
        let (history, test) = split::paper_split(&prompts);
        let test: Vec<_> = test.into_iter().take(10).collect();

        let mut sem_row = vec![model.name.clone(), "semantic".into()];
        let mut traj_row = vec![model.name.clone(), "trajectory".into()];
        for &cap in &CAPACITIES {
            let mut store = ExpertMapStore::new(
                cap,
                model.num_layers as usize,
                model.experts_per_layer as usize,
                3,
            );
            // Fill to capacity from history (dedup handles the overflow).
            'fill: for p in &history {
                for iter in 0..p.iterations().min(4) {
                    let span = if iter == 0 {
                        TokenSpan::prefill(p.prompt_tokens)
                    } else {
                        TokenSpan::single(p.prompt_tokens + iter - 1)
                    };
                    let rows: Vec<Vec<f64>> = (0..model.num_layers)
                        .map(|l| gate.iteration_distribution(p.routing, iter, l, span))
                        .collect();
                    store.insert(
                        gate.semantic_embedding(p.routing, iter),
                        ExpertMap::new(rows),
                    );
                    if store.stats().appended as usize >= cap * 3 {
                        break 'fill;
                    }
                }
            }

            let mut sem_sum = 0.0;
            let mut traj_sum = 0.0;
            let mut n = 0.0;
            for p in &test {
                for iter in 0..p.iterations().min(6) {
                    let span = if iter == 0 {
                        TokenSpan::prefill(p.prompt_tokens)
                    } else {
                        TokenSpan::single(p.prompt_tokens + iter - 1)
                    };
                    if let Some(m) =
                        Matcher::semantic_match(&store, &gate.semantic_embedding(p.routing, iter))
                    {
                        sem_sum += m.score;
                    }
                    let mut tracker = TrajectoryTracker::new();
                    tracker.reset(&store);
                    for l in 0..model.num_layers.min(8) {
                        let dist = gate.iteration_distribution(p.routing, iter, l, span);
                        tracker.observe_layer(&store, &dist);
                    }
                    if let Some(m) = tracker.best(&store) {
                        traj_sum += m.score;
                    }
                    n += 1.0;
                }
            }
            sem_row.push(format!("{:.3}", sem_sum / n));
            traj_row.push(format!("{:.3}", traj_sum / n));
        }
        table.row(sem_row);
        table.row(traj_row);
    }
    table.print();
    let _ = write_csv(&table, "fig14a_capacity");
    println!("expected shape (paper Fig. 14a): both scores rise steeply at");
    println!("small capacities and flatten near 1K maps — the paper's default.\n");
}

fn batch_sweep() {
    let mut table = Table::new(
        "Figure 14b: TTFT / TPOT (ms) vs inference batch size (Mixtral-8x7B)",
        &["system", "B=1", "B=2", "B=3", "B=4"],
    );
    let model = presets::mixtral_8x7b();
    for system in [
        System::MixtralOffloading,
        System::ProMoe,
        System::MoeInfinity,
        System::Fmoe,
    ] {
        let mut ttft_row = vec![format!("{} TTFT", system.name())];
        let mut tpot_row = vec![format!("{} TPOT", system.name())];
        for b in 1..=4usize {
            let mut cell = CellConfig::new(model.clone(), DatasetSpec::lmsys_chat(), system);
            cell.batch_size = b;
            cell.test_requests = 8;
            cell.max_decode = 16;
            let out = cell.run_offline();
            ttft_row.push(format!("{:.0}", out.aggregate.mean_ttft_ms));
            tpot_row.push(format!("{:.0}", out.aggregate.mean_tpot_ms));
        }
        table.row(ttft_row);
        table.row(tpot_row);
    }
    table.print();
    let _ = write_csv(&table, "fig14b_batch");
    println!("expected shape (paper Fig. 14b): latencies grow with batch size");
    println!("(unions of activated experts widen); fMoE stays lowest in most cells.");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cap_only = args.iter().any(|a| a == "--capacity");
    let batch_only = args.iter().any(|a| a == "--batch");
    if !batch_only {
        capacity_sweep();
    }
    if !cap_only {
        batch_sweep();
    }
}
