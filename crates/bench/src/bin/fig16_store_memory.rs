//! Figure 16: CPU memory footprint of the Expert Map Store vs capacity.
//!
//! An entry stores `L·J` fp32 probabilities plus the semantic embedding;
//! Qwen1.5-MoE's 24×60 map is the widest, so it costs the most per entry.
//! The paper's point: even at 32K maps the store stays under 200 MB —
//! trivial next to host memory.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin fig16_store_memory
//! ```

use fmoe::store::ExpertMapStore;
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::{presets, GateParams};

const CAPACITIES: [usize; 6] = [1_000, 2_000, 4_000, 8_000, 16_000, 32_000];

fn main() {
    let mut table = Table::new(
        "Figure 16: Expert Map Store memory footprint (MB) vs capacity",
        &["model", "1K", "2K", "4K", "8K", "16K", "32K"],
    );
    for model in presets::evaluation_models() {
        let emb_dim = GateParams::for_model(&model).embedding_dim as usize;
        let mut row = vec![model.name.clone()];
        for &cap in &CAPACITIES {
            let store = ExpertMapStore::new(
                cap,
                model.num_layers as usize,
                model.experts_per_layer as usize,
                3,
            );
            row.push(format!(
                "{:.1}",
                store.memory_bytes_at_capacity(emb_dim) as f64 / 1e6
            ));
        }
        table.row(row);
    }
    table.print();
    let _ = write_csv(&table, "fig16_store_memory");
    println!("expected shape (paper Fig. 16): linear growth; Qwen1.5-MoE");
    println!("largest (widest maps); everything under 200 MB at 32K capacity.");
}
