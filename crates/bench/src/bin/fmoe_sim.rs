//! `fmoe_sim` — a command-line front end to the simulator, for running
//! custom serving scenarios without writing Rust.
//!
//! ```text
//! fmoe_sim list
//! fmoe_sim serve  --model mixtral --dataset lmsys --system fmoe \
//!                 --cache-gb 24 --requests 10 --decode 24 --batch 1 \
//!                 --distance 3 --seed 7 [--low-precision 0.1]
//!                 [--save-store store.fmoe]
//!                 [--online [--trace-file trace.csv] [--slots 4]]
//! fmoe_sim sweep  --param cache-gb --values 6,12,24,48 --model phi --system fmoe
//! fmoe_sim timeline      --model mixtral --system fmoe
//! fmoe_sim analyze-store --file store.fmoe
//! ```
//!
//! Everything prints as a table and writes CSV under `results/`.

use fmoe_bench::harness::{CellConfig, System};
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::{presets, ModelConfig};
use fmoe_serving::online::{serve as serve_online, ServeOptions};
use fmoe_workload::{AzureTraceSpec, DatasetSpec};
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    flags
}

fn model_by_name(name: &str) -> Option<ModelConfig> {
    match name.to_ascii_lowercase().as_str() {
        "mixtral" | "mixtral-8x7b" => Some(presets::mixtral_8x7b()),
        "qwen" | "qwen1.5-moe" => Some(presets::qwen15_moe_a27b()),
        "phi" | "phi-3.5-moe" => Some(presets::phi35_moe()),
        "deepseek" | "deepseek-moe" => Some(presets::deepseek_moe_16b()),
        "small" => Some(presets::small_test_model()),
        _ => None,
    }
}

fn dataset_by_name(name: &str) -> Option<DatasetSpec> {
    match name.to_ascii_lowercase().as_str() {
        "lmsys" | "lmsys-chat-1m" => Some(DatasetSpec::lmsys_chat()),
        "sharegpt" => Some(DatasetSpec::sharegpt()),
        "tiny" => Some(DatasetSpec::tiny_test()),
        _ => None,
    }
}

fn system_by_name(name: &str) -> Option<System> {
    match name.to_ascii_lowercase().as_str() {
        "fmoe" => Some(System::Fmoe),
        "moe-infinity" | "moeinfinity" => Some(System::MoeInfinity),
        "promoe" => Some(System::ProMoe),
        "mixtral-offloading" | "mixtraloffloading" => Some(System::MixtralOffloading),
        "deepspeed" | "deepspeed-inference" => Some(System::DeepSpeed),
        "swapmoe" => Some(System::SwapMoe),
        "oracle" => Some(System::Oracle),
        "no-offload" | "nooffload" => Some(System::NoOffload),
        _ => None,
    }
}

fn timeline(flags: &HashMap<String, String>) -> Result<(), String> {
    let cell = build_cell(flags)?;
    let gate = cell.gate();
    let (history, test) = cell.split();
    let mut predictor = cell.predictor(&gate, &history);
    let mut engine = cell.engine(gate);
    // One warm-up so the timeline shows steady-state behaviour, then
    // record a single request.
    if let Some(p) = history.first() {
        let _ = engine.serve_request(*p, predictor.as_mut());
    }
    engine.set_timeline_enabled(true);
    let mut p = *test.first().ok_or("no test prompt available")?;
    p.output_tokens = p.output_tokens.min(3);
    let metrics = engine.serve_request(p, predictor.as_mut());
    let entries = engine.take_timeline();
    println!(
        "timeline of request {} on {} with {} ({} events):
",
        metrics.request_id,
        cell.model.name,
        cell.system.name(),
        entries.len()
    );
    print!("{}", fmoe_serving::timeline::render(&entries));
    println!(
        "
TTFT {:.1} ms, TPOT {:.1} ms, hit rate {:.1}%",
        metrics.ttft_ns as f64 / 1e6,
        metrics.tpot_ns() / 1e6,
        metrics.hit_rate() * 100.0
    );
    Ok(())
}

fn analyze_store(flags: &HashMap<String, String>) -> Result<(), String> {
    use fmoe::store::ExpertMapStore;
    let path = flags
        .get("file")
        .ok_or("--file <path> required (a store saved with save_store_to_path)")?;
    let store =
        ExpertMapStore::load_from_path(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    println!("Expert Map Store: {path}");
    println!(
        "  entries:    {} / {} capacity",
        store.len(),
        store.capacity()
    );
    println!(
        "  map shape:  {} layers x {} experts (prefetch distance {})",
        store.num_layers(),
        store.experts_per_layer(),
        store.prefetch_distance()
    );
    println!(
        "  memory:     {:.2} MB (fp32)",
        store.memory_bytes() as f64 / 1e6
    );
    if store.len() >= 2 {
        // Diversity: distribution of each entry's nearest-neighbour
        // redundancy — low values mean the dedup kept the store spread out.
        let mut nn = Vec::with_capacity(store.len());
        for (i, e) in store.entries().enumerate() {
            let mut best = f64::NEG_INFINITY;
            for j in 0..store.len() {
                if i != j {
                    best = best.max(store.redundancy(&e.embedding, e.flat(), j));
                }
            }
            nn.push(best);
        }
        let cdf = fmoe_stats::EmpiricalCdf::new(nn);
        println!(
            "  nearest-neighbour redundancy: p10 {:.3}  p50 {:.3}  p90 {:.3}",
            cdf.quantile(0.10).unwrap_or(0.0),
            cdf.quantile(0.50).unwrap_or(0.0),
            cdf.quantile(0.90).unwrap_or(0.0)
        );
        let lj = store.num_layers() * store.experts_per_layer();
        println!(
            "  covering scale: {:.1}x L*J (paper section 4.4 cites 2x for a 75% floor)",
            store.len() as f64 / lj as f64
        );
    }
    Ok(())
}

fn list() {
    println!("models:   mixtral  qwen  phi  deepseek  small");
    println!("datasets: lmsys  sharegpt  tiny");
    println!("systems:  fmoe  moe-infinity  promoe  mixtral-offloading  deepspeed  swapmoe  oracle  no-offload");
    println!("sweep params: cache-gb  distance  batch  requests");
}

fn build_cell(flags: &HashMap<String, String>) -> Result<CellConfig, String> {
    let model = model_by_name(flags.get("model").map_or("mixtral", String::as_str))
        .ok_or("unknown --model (try `fmoe_sim list`)")?;
    let dataset = dataset_by_name(flags.get("dataset").map_or("lmsys", String::as_str))
        .ok_or("unknown --dataset")?;
    let system = system_by_name(flags.get("system").map_or("fmoe", String::as_str))
        .ok_or("unknown --system")?;
    let mut cell = CellConfig::new(model, dataset, system);
    let parse = |key: &str, default: u64| -> Result<u64, String> {
        flags.get(key).map_or(Ok(default), |v| {
            v.parse().map_err(|_| format!("bad --{key}: {v}"))
        })
    };
    if let Some(gb) = flags.get("cache-gb") {
        let gb: u64 = gb.parse().map_err(|_| format!("bad --cache-gb: {gb}"))?;
        cell.cache_budget_bytes = gb << 30;
    }
    cell.test_requests = parse("requests", 10)? as usize;
    cell.max_decode = parse("decode", 24)?;
    cell.batch_size = parse("batch", 1)? as usize;
    cell.prefetch_distance = parse("distance", 3)? as u32;
    cell.gate_seed = parse("seed", cell.gate_seed)?;
    if let Some(threshold) = flags.get("low-precision") {
        let threshold: f64 = threshold
            .parse()
            .map_err(|_| format!("bad --low-precision: {threshold}"))?;
        cell.low_precision_threshold = Some(threshold);
    }
    Ok(cell)
}

fn serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let cell = build_cell(flags)?;
    let mut table = Table::new(
        "fmoe_sim serve",
        &[
            "model",
            "dataset",
            "system",
            "TTFT (ms)",
            "TPOT (ms)",
            "hit rate",
            "p95 (ms)",
        ],
    );
    if flags.contains_key("online") {
        let gate = cell.gate();
        let mut predictor = cell.predictor(&gate, &[]);
        let mut engine = cell.engine(gate);
        let trace = if let Some(path) = flags.get("trace-file") {
            let mut file = std::fs::File::open(path)
                .map_err(|e| format!("cannot open --trace-file {path}: {e}"))?;
            fmoe_workload::read_trace_csv(&mut file)
                .map_err(|e| format!("bad trace file {path}: {e}"))?
        } else {
            let mut spec = AzureTraceSpec::paper_online_serving(cell.dataset.clone());
            spec.num_requests = cell.test_requests as u64;
            spec.generate()
        };
        let options = if let Some(slots) = flags.get("slots") {
            let slots: usize = slots.parse().map_err(|_| format!("bad --slots: {slots}"))?;
            ServeOptions::continuous(slots)
        } else {
            ServeOptions::fcfs()
        };
        let results = serve_online(&mut engine, &trace, predictor.as_mut(), &options)
            .map_err(|e| format!("serving failed: {e}"))?
            .results;
        let latencies: Vec<f64> = results
            .iter()
            .map(|r| r.request_latency_ns() as f64 / 1e6)
            .collect();
        let cdf = fmoe_stats::EmpiricalCdf::new(latencies);
        let metrics: Vec<_> = results.iter().map(|r| r.metrics).collect();
        let a = fmoe_serving::AggregateMetrics::from_requests(&metrics);
        table.row(vec![
            cell.model.name.clone(),
            format!("{} (online)", cell.dataset.name),
            cell.system.name().into(),
            format!("{:.1}", a.mean_ttft_ms),
            format!("{:.1}", a.mean_tpot_ms),
            format!("{:.1}%", a.hit_rate * 100.0),
            format!("{:.1}", cdf.quantile(0.95).unwrap_or(0.0)),
        ]);
    } else if let (System::Fmoe, Some(store_path)) = (cell.system, flags.get("save-store")) {
        // Keep the concrete predictor so its store can be persisted.
        let gate = cell.gate();
        let (history, test) = cell.split();
        let mut predictor = cell.fmoe_predictor(&gate, &history);
        let mut engine = cell.engine(gate);
        for p in history.iter().take(cell.warmup_requests) {
            let _ = engine.serve_request(*p, &mut predictor);
        }
        let metrics: Vec<_> = test
            .iter()
            .take(cell.test_requests)
            .map(|p| engine.serve_request(*p, &mut predictor))
            .collect();
        let a = fmoe_serving::AggregateMetrics::from_requests(&metrics);
        predictor
            .save_store_to_path(store_path)
            .map_err(|e| format!("cannot save store to {store_path}: {e}"))?;
        println!("saved {} maps to {store_path}", predictor.store_len());
        table.row(vec![
            cell.model.name.clone(),
            cell.dataset.name.clone(),
            cell.system.name().into(),
            format!("{:.1}", a.mean_ttft_ms),
            format!("{:.1}", a.mean_tpot_ms),
            format!("{:.1}%", a.hit_rate * 100.0),
            format!("{:.1}", a.p95_total_ms),
        ]);
    } else {
        let out = cell.run_offline();
        let a = &out.aggregate;
        table.row(vec![
            cell.model.name.clone(),
            cell.dataset.name.clone(),
            cell.system.name().into(),
            format!("{:.1}", a.mean_ttft_ms),
            format!("{:.1}", a.mean_tpot_ms),
            format!("{:.1}%", a.hit_rate * 100.0),
            format!("{:.1}", a.p95_total_ms),
        ]);
    }
    table.print();
    let _ = write_csv(&table, "fmoe_sim_serve");
    Ok(())
}

fn sweep(flags: &HashMap<String, String>) -> Result<(), String> {
    let param = flags
        .get("param")
        .ok_or("--param required (see `fmoe_sim list`)")?
        .clone();
    let values: Vec<u64> = flags
        .get("values")
        .ok_or("--values required, comma-separated")?
        .split(',')
        .map(|v| v.trim().parse().map_err(|_| format!("bad value: {v}")))
        .collect::<Result<_, _>>()?;
    let mut table = Table::new(
        &format!("fmoe_sim sweep over {param}"),
        &[param.as_str(), "TTFT (ms)", "TPOT (ms)", "hit rate"],
    );
    for &v in &values {
        let mut cell = build_cell(flags)?;
        match param.as_str() {
            "cache-gb" => cell.cache_budget_bytes = v << 30,
            "distance" => cell.prefetch_distance = v as u32,
            "batch" => cell.batch_size = v as usize,
            "requests" => cell.test_requests = v as usize,
            other => return Err(format!("unknown sweep param: {other}")),
        }
        let out = cell.run_offline();
        let a = &out.aggregate;
        table.row(vec![
            v.to_string(),
            format!("{:.1}", a.mean_ttft_ms),
            format!("{:.1}", a.mean_tpot_ms),
            format!("{:.1}%", a.hit_rate * 100.0),
        ]);
    }
    table.print();
    let _ = write_csv(&table, "fmoe_sim_sweep");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    let flags = parse_flags(&args[args.len().min(1)..]);
    let result = match command {
        "list" => {
            list();
            Ok(())
        }
        "serve" => serve(&flags),
        "sweep" => sweep(&flags),
        "timeline" => timeline(&flags),
        "analyze-store" => analyze_store(&flags),
        _ => {
            println!("usage: fmoe_sim <list|serve|sweep|timeline|analyze-store> [--flags]\n");
            list();
            Ok(())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags_handles_values_and_switches() {
        let args: Vec<String> = ["--model", "phi", "--online", "--requests", "4"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let flags = parse_flags(&args);
        assert_eq!(flags.get("model").map(String::as_str), Some("phi"));
        assert_eq!(flags.get("online").map(String::as_str), Some("true"));
        assert_eq!(flags.get("requests").map(String::as_str), Some("4"));
    }

    #[test]
    fn lookups_cover_all_names() {
        for name in ["mixtral", "qwen", "phi", "deepseek", "small"] {
            assert!(model_by_name(name).is_some(), "{name}");
        }
        assert!(model_by_name("gpt4").is_none());
        for name in ["lmsys", "sharegpt", "tiny"] {
            assert!(dataset_by_name(name).is_some(), "{name}");
        }
        for name in [
            "fmoe",
            "moe-infinity",
            "promoe",
            "mixtral-offloading",
            "deepspeed",
            "swapmoe",
            "oracle",
            "no-offload",
        ] {
            assert!(system_by_name(name).is_some(), "{name}");
        }
        assert!(system_by_name("vllm").is_none());
    }

    #[test]
    fn build_cell_applies_flags() {
        let mut flags = HashMap::new();
        flags.insert("model".into(), "small".into());
        flags.insert("cache-gb".into(), "2".into());
        flags.insert("distance".into(), "5".into());
        flags.insert("low-precision".into(), "0.2".into());
        let cell = build_cell(&flags).unwrap();
        assert_eq!(cell.model.name, "Small-Test-MoE");
        assert_eq!(cell.cache_budget_bytes, 2 << 30);
        assert_eq!(cell.prefetch_distance, 5);
        assert_eq!(cell.low_precision_threshold, Some(0.2));
    }

    #[test]
    fn build_cell_rejects_bad_values() {
        let mut flags = HashMap::new();
        flags.insert("model".into(), "nonsense".into());
        assert!(build_cell(&flags).is_err());
        let mut flags = HashMap::new();
        flags.insert("requests".into(), "many".into());
        assert!(build_cell(&flags).is_err());
    }
}
