//! Figure 4: expert hit rates of coarse- vs. fine-grained offloading
//! designs at different prefetch distances.
//!
//! Following the paper's framing, "fine-grained" is fMoE's expert-map
//! design and "coarse-grained" is MoE-Infinity's request-level tracking.
//! We measure with the prediction-coverage probe (plans vs. truly
//! activated experts) at an equal per-layer prefetch budget, which
//! isolates prediction quality from cache/bandwidth effects; the prefetch
//! window is fixed to 1 so the distance semantics are exact.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin fig4_prefetch_distance
//! ```

use fmoe::predictor::HistoryRequest;
use fmoe::{FmoeConfig, FmoePredictor};
use fmoe_baselines::moe_infinity::EamHistoryRequest;
use fmoe_baselines::MoeInfinityPredictor;
use fmoe_bench::harness::coverage_probe;
use fmoe_bench::plot::{LinePlot, Series};
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::{presets, GateParams, GateSimulator, ModelConfig};
use fmoe_workload::{split, DatasetSpec};

const DISTANCES: [u32; 6] = [1, 2, 3, 4, 6, 8];

fn probe(model: &ModelConfig, distance: u32, fine: bool) -> f64 {
    let gate = GateSimulator::new(model.clone(), GateParams::for_model(model));
    let dataset = DatasetSpec::lmsys_chat();
    let prompts = dataset.prompts(100);
    let (history, test) = split::paper_split(&prompts);
    let test: Vec<_> = test.into_iter().take(12).collect();

    if fine {
        let mut config = FmoeConfig::for_model(model).with_distance(distance);
        config.prefetch_window = 1;
        // Equal budget: fixed top-(K+1) selection for both designs.
        config.use_dynamic_threshold = false;
        let mut p = FmoePredictor::new(model.clone(), config);
        let hist: Vec<HistoryRequest> = history
            .iter()
            .map(|pr| HistoryRequest {
                routing: pr.routing,
                prompt_tokens: pr.prompt_tokens,
                iterations: pr.iterations().min(6),
            })
            .collect();
        p.populate_from_history(&gate, &hist, 6);
        coverage_probe(&gate, &mut p, &test, 12).coverage
    } else {
        let mut p = MoeInfinityPredictor::new(model)
            .with_distance(distance)
            .with_window(1);
        let hist: Vec<EamHistoryRequest> = history
            .iter()
            .map(|pr| EamHistoryRequest {
                routing: pr.routing,
                prompt_tokens: pr.prompt_tokens,
                iterations: pr.iterations().min(6),
            })
            .collect();
        p.populate_from_history(&gate, &hist, 6);
        coverage_probe(&gate, &mut p, &test, 12).coverage
    }
}

fn main() {
    let mut table = Table::new(
        "Figure 4: hit rate (prediction coverage) vs prefetch distance",
        &["model", "design", "d=1", "d=2", "d=3", "d=4", "d=6", "d=8"],
    );
    for model in presets::evaluation_models() {
        let mut plot = LinePlot::new(
            &format!("Fig. 4 — hit rate vs prefetch distance ({})", model.name),
            "prefetch distance d",
            "hit rate (%)",
        );
        for fine in [false, true] {
            let design = if fine {
                "fine-grained (fMoE)"
            } else {
                "coarse-grained (EAM)"
            };
            let mut row = vec![model.name.clone(), design.into()];
            let mut points = Vec::new();
            for &d in &DISTANCES {
                let coverage = probe(&model, d, fine);
                row.push(format!("{:.1}%", coverage * 100.0));
                points.push((f64::from(d), coverage * 100.0));
            }
            plot.series(Series::new(design, points));
            table.row(row);
        }
        let _ = plot.write_svg(&format!(
            "fig4_{}",
            model.name.to_ascii_lowercase().replace(['.', ' '], "_")
        ));
    }
    table.print();
    let _ = write_csv(&table, "fig4_prefetch_distance");
    println!("expected shape (paper Fig. 4): fine-grained well above coarse at");
    println!("every distance, degrading gracefully as d grows; coarse stays low.");
}
