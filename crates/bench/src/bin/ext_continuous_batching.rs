//! Extension experiment (not a paper figure): continuous batching.
//!
//! The paper serves requests through static batches (Fig. 14b sweeps
//! B = 1..4). Production systems instead admit requests into the running
//! batch at iteration boundaries and retire them as they finish. Our
//! engine supports both; this experiment replays the same Azure-style
//! trace through the sequential FCFS scheduler and through continuous
//! batching at several slot counts, with fMoE as the offloading policy.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin ext_continuous_batching
//! ```

use fmoe_bench::harness::{CellConfig, System};
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::presets;
use fmoe_serving::online::{serve, ServeOptions};
use fmoe_stats::EmpiricalCdf;
use fmoe_workload::{AzureTraceSpec, DatasetSpec};

fn main() {
    let model = presets::phi35_moe();
    let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::lmsys_chat());
    spec.num_requests = 32;
    // Make the trace hot enough that queueing matters.
    spec.quiet_interarrival_ms = 400.0;
    let trace = spec.generate();

    let mut table = Table::new(
        "Extension: FCFS vs continuous batching (Phi-3.5-MoE, fMoE policy, hot trace)",
        &[
            "scheduler",
            "p50 latency",
            "p95 latency",
            "makespan",
            "mean TTFT",
        ],
    );

    let mut run = |name: &str, slots: Option<usize>| {
        let mut cell = CellConfig::new(model.clone(), DatasetSpec::lmsys_chat(), System::Fmoe);
        cell.max_decode = 24;
        cell.warmup_requests = 0;
        let gate = cell.gate();
        let mut predictor = cell.predictor(&gate, &[]);
        let mut engine = cell.engine(gate);
        let options = match slots {
            None => ServeOptions::fcfs(),
            Some(s) => ServeOptions::continuous(s),
        };
        let results = serve(&mut engine, &trace, predictor.as_mut(), &options)
            .expect("serving succeeds")
            .results;
        let latencies: Vec<f64> = results
            .iter()
            .map(|r| r.request_latency_ns() as f64 / 1e6)
            .collect();
        let cdf = EmpiricalCdf::new(latencies);
        let makespan = results.iter().map(|r| r.finish_ns).max().unwrap_or(0) as f64 / 1e6;
        let mean_ttft = results
            .iter()
            .map(|r| r.metrics.ttft_ns as f64 / 1e6)
            .sum::<f64>()
            / results.len() as f64;
        table.row(vec![
            name.into(),
            format!("{:.0} ms", cdf.quantile(0.5).unwrap_or(0.0)),
            format!("{:.0} ms", cdf.quantile(0.95).unwrap_or(0.0)),
            format!("{:.1} s", makespan / 1000.0),
            format!("{mean_ttft:.0} ms"),
        ]);
    };

    run("FCFS (sequential)", None);
    for slots in [2usize, 4, 8] {
        run(&format!("continuous, {slots} slots"), Some(slots));
    }

    table.print();
    let _ = write_csv(&table, "ext_continuous_batching");
    println!("expected: continuous batching shrinks queueing-dominated tail");
    println!("latency and makespan as slots grow; per-request TTFT rises a");
    println!("little (shared iterations are heavier) — the classic trade.");
}
