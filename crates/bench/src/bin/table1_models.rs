//! Table 1: characteristics of the three MoE models in the evaluation.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin table1_models
//! ```

use fmoe_bench::report::{write_csv, Table};
use fmoe_model::presets;

fn main() {
    let mut table = Table::new(
        "Table 1: Characteristics of three MoE models in evaluation",
        &[
            "MoE Model",
            "Params (active/total)",
            "Experts/Layer (active/total)",
            "Layers",
            "Expert size",
            "All experts",
        ],
    );
    for m in presets::evaluation_models() {
        table.row(vec![
            m.name.clone(),
            format!(
                "{:.1}B / {:.1}B",
                m.active_params() as f64 / 1e9,
                m.total_params() as f64 / 1e9
            ),
            format!("{} / {}", m.top_k, m.experts_per_layer),
            m.num_layers.to_string(),
            format!("{:.1} MB", m.expert_bytes() as f64 / 1e6),
            format!("{:.1} GB", m.total_expert_bytes() as f64 / 1e9),
        ]);
    }
    table.print();
    match write_csv(&table, "table1_models") {
        Ok(path) => println!("csv: {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    println!("\npaper values: Mixtral 12.9/46.7B (2/8, 32L), Qwen 2.7/14.3B (4/60, 24L), Phi 6.6/42B (2/16, 32L)");
}
