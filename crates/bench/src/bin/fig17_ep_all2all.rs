//! Figure 17 (expert-parallelism extension): EP sharding inside a
//! replica vs host offloading, under the all2all cost model.
//!
//! Each cell serves the same Azure-timed online trace through one
//! replica whose experts are sharded across `gpus` devices by a
//! placement policy, with per-layer token routing charged through the
//! all2all model (`fmoe_memsim::all2all_layer_time`) on the chosen
//! collective backend. The sweep crosses placement policy ×
//! GPUs-per-replica × backend under two memory regimes:
//!
//! * **per-gpu-fixed** — every GPU contributes a fixed expert budget,
//!   so aggregate residency *grows* with the replica width. This is the
//!   regime EP is bought for: more GPUs → more experts resident → fewer
//!   blocking host loads, and the all2all toll is the price of
//!   admission.
//! * **aggregate-fixed** — the replica's total expert budget is held
//!   constant while the width grows (memory-constrained fleet: the same
//!   HBM is just split N ways). EP then adds all2all latency without
//!   buying any residency, and host offloading on one GPU wins.
//!
//! The summary table renders the head-to-head verdict per regime
//! (`ep_wins` / `offload_wins`); the binary asserts both directions of
//! the trade-off so CI catches a cost model drifting into "EP always
//! wins" or "EP never wins" territory.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin fig17_ep_all2all [--quick] [--jobs N]
//! ```
//!
//! `--jobs N` fans the independent cells across worker threads; output
//! bytes are identical to a sequential run.

use fmoe::{FmoeConfig, FmoePredictor};
use fmoe_bench::harness::ParallelRunner;
use fmoe_bench::report::{write_csv, Table};
use fmoe_memsim::{All2AllBackend, Topology};
use fmoe_model::{presets, GateParams, GateSimulator, GpuSpec, ModelConfig};
use fmoe_serving::{
    serve, EngineBuilder, EngineConfig, ExpertParallelConfig, FmoeMapPlacement,
    LoadBalancedPlacement, RoundRobinPlacement, ServeOptions,
};
use fmoe_stats::EmpiricalCdf;
use fmoe_workload::{AzureTraceSpec, DatasetSpec, TraceEvent};

fn model() -> ModelConfig {
    presets::small_test_model()
}

fn gate() -> GateSimulator {
    let m = model();
    GateSimulator::new(m.clone(), GateParams::for_model(&m))
}

fn trace(num_requests: u64) -> Vec<TraceEvent> {
    let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::tiny_test());
    spec.num_requests = num_requests;
    spec.generate()
}

/// Historical per-expert activation counts, replayed through the gate —
/// what a load-balanced placement would have measured in production.
fn activation_counts() -> Vec<u64> {
    let g = gate();
    let m = model();
    let total = m.total_experts() as usize;
    let mut counts = vec![0u64; total];
    for seed in 0..6u64 {
        let req = fmoe_model::RequestRouting {
            cluster: seed % 4,
            request_seed: 31_000 + seed,
        };
        for iteration in 0..3u64 {
            let span = if iteration == 0 {
                fmoe_model::gate::TokenSpan::prefill(16)
            } else {
                fmoe_model::gate::TokenSpan::single(16 + iteration - 1)
            };
            for layer in 0..m.num_layers {
                for slot in g.activated_slots(req, iteration, layer, span) {
                    let d = fmoe_model::ExpertId::new(layer, slot).dense_index(m.experts_per_layer);
                    counts[d] += 1;
                }
            }
        }
    }
    counts
}

/// Which memory regime a cell runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BudgetMode {
    /// Aggregate budget = per-GPU share × width (residency grows).
    PerGpuFixed,
    /// Aggregate budget constant regardless of width.
    AggregateFixed,
}

impl BudgetMode {
    fn name(self) -> &'static str {
        match self {
            Self::PerGpuFixed => "per-gpu-fixed",
            Self::AggregateFixed => "aggregate-fixed",
        }
    }

    fn budget_bytes(self, m: &ModelConfig, gpus: u32) -> u64 {
        match self {
            // Each GPU holds 6 experts' worth of HBM for the cache.
            Self::PerGpuFixed => m.expert_bytes() * 6 * u64::from(gpus),
            // The whole replica holds 12 experts' worth, however wide.
            Self::AggregateFixed => m.expert_bytes() * 12,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlacementKind {
    RoundRobin,
    LoadBalanced,
    FmoeMap,
}

impl PlacementKind {
    fn name(self) -> &'static str {
        match self {
            Self::RoundRobin => "round-robin",
            Self::LoadBalanced => "load-balanced",
            Self::FmoeMap => "fmoe-map",
        }
    }
}

/// One swept cell: `gpus == 1` is the host-offloading baseline (no EP;
/// placement and backend are moot and rendered as `-`).
#[derive(Debug, Clone, Copy)]
struct Cell {
    mode: BudgetMode,
    gpus: u32,
    placement: Option<PlacementKind>,
    backend: Option<All2AllBackend>,
}

impl Cell {
    fn placement_name(&self) -> &'static str {
        self.placement.map_or("-", PlacementKind::name)
    }

    fn backend_name(&self) -> &'static str {
        self.backend.map_or("-", All2AllBackend::name)
    }
}

struct CellOutcome {
    served: usize,
    hit_rate: f64,
    p50_ms: f64,
    p99_ms: f64,
    all2all_ms: f64,
    peer_fetches: u64,
    on_demand_ms: f64,
}

fn run_cell(cell: &Cell, events: &[TraceEvent], counts: &[u64]) -> CellOutcome {
    let m = model();
    let topo = Topology::builder()
        .num_gpus(cell.gpus)
        .gpu_memory_bytes(8 << 30)
        .build()
        .expect("valid sweep topology");
    let config = EngineConfig {
        cache_budget_bytes: cell.mode.budget_bytes(&m, cell.gpus),
        preload_all: false,
        max_decode_iterations: Some(4),
        context_collection_ns: 10_000,
        framework_overhead_per_layer_ns: 50_000,
        expert_parallel: cell.backend.map(|backend| ExpertParallelConfig {
            backend,
            ..ExpertParallelConfig::default()
        }),
        ..EngineConfig::paper_default()
    };
    let mut builder = EngineBuilder::new(gate(), GpuSpec::rtx_3090(), topo).config(config);
    let total: f64 = counts.iter().map(|&c| c as f64).sum();
    match cell.placement {
        Some(PlacementKind::RoundRobin) => {
            builder = builder.placement_policy(&RoundRobinPlacement);
        }
        Some(PlacementKind::LoadBalanced) => {
            builder = builder.placement_policy(&LoadBalancedPlacement::from_counts(counts));
        }
        Some(PlacementKind::FmoeMap) => {
            let probabilities: Vec<f64> = counts.iter().map(|&c| c as f64 / total).collect();
            builder =
                builder.placement_policy(&FmoeMapPlacement::from_probabilities(probabilities));
        }
        None => {}
    }
    let mut engine = builder.build();
    let mut predictor = FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m));
    let report = serve(&mut engine, events, &mut predictor, &ServeOptions::fcfs())
        .expect("fcfs is infallible");
    let latencies: Vec<f64> = report
        .results
        .iter()
        .map(|r| r.request_latency_ns() as f64)
        .collect();
    let cdf = EmpiricalCdf::new(latencies);
    let stats = engine.cache_stats();
    let breakdown = engine.take_breakdown();
    CellOutcome {
        served: report.results.len(),
        hit_rate: if stats.hits + stats.misses == 0 {
            0.0
        } else {
            stats.hits as f64 / (stats.hits + stats.misses) as f64
        },
        p50_ms: cdf.quantile(0.5).unwrap_or(0.0) / 1e6,
        p99_ms: cdf.quantile(0.99).unwrap_or(0.0) / 1e6,
        all2all_ms: breakdown.all2all_ns as f64 / 1e6,
        peer_fetches: breakdown.peer_fetches,
        on_demand_ms: breakdown.on_demand_wait_ns as f64 / 1e6,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let runner = ParallelRunner::from_args();
    let requests: u64 = if quick { 10 } else { 24 };
    let widths: &[u32] = if quick { &[2] } else { &[2, 4] };
    let placements: &[PlacementKind] = if quick {
        &[PlacementKind::RoundRobin, PlacementKind::LoadBalanced]
    } else {
        &[
            PlacementKind::RoundRobin,
            PlacementKind::LoadBalanced,
            PlacementKind::FmoeMap,
        ]
    };
    let backends: &[All2AllBackend] = if quick {
        &[All2AllBackend::LowLatency, All2AllBackend::HighThroughput]
    } else {
        &All2AllBackend::ALL
    };

    let events = trace(requests);
    let counts = activation_counts();

    let mut cells = Vec::new();
    for mode in [BudgetMode::PerGpuFixed, BudgetMode::AggregateFixed] {
        // The host-offloading baseline: one GPU, no EP.
        cells.push(Cell {
            mode,
            gpus: 1,
            placement: None,
            backend: None,
        });
        for &gpus in widths {
            for &placement in placements {
                for &backend in backends {
                    cells.push(Cell {
                        mode,
                        gpus,
                        placement: Some(placement),
                        backend: Some(backend),
                    });
                }
            }
        }
    }

    let outcomes = runner.run(&cells, |_, cell| run_cell(cell, &events, &counts));

    let mut table = Table::new(
        "Figure 17: expert parallelism vs host offloading under the all2all cost model",
        &[
            "mode",
            "gpus",
            "placement",
            "backend",
            "budget_experts",
            "served",
            "hit_rate",
            "p50_ms",
            "p99_ms",
            "all2all_ms",
            "peer_fetches",
            "on_demand_ms",
        ],
    );
    let m = model();
    for (cell, outcome) in cells.iter().zip(&outcomes) {
        table.row(vec![
            cell.mode.name().into(),
            cell.gpus.to_string(),
            cell.placement_name().into(),
            cell.backend_name().into(),
            (cell.mode.budget_bytes(&m, cell.gpus) / m.expert_bytes()).to_string(),
            outcome.served.to_string(),
            format!("{:.4}", outcome.hit_rate),
            format!("{:.2}", outcome.p50_ms),
            format!("{:.2}", outcome.p99_ms),
            format!("{:.2}", outcome.all2all_ms),
            outcome.peer_fetches.to_string(),
            format!("{:.2}", outcome.on_demand_ms),
        ]);
    }
    table.print();

    // Head-to-head per regime: the best EP cell vs the offloading
    // baseline, plus the worst EP cell (the price of a bad backend).
    let mut summary = Table::new(
        "Figure 17 summary: EP vs offloading verdict per memory regime",
        &[
            "mode",
            "offload_p99_ms",
            "best_ep_p99_ms",
            "best_ep_cell",
            "worst_ep_p99_ms",
            "best_winner",
            "worst_winner",
        ],
    );
    for mode in [BudgetMode::PerGpuFixed, BudgetMode::AggregateFixed] {
        let baseline = cells
            .iter()
            .zip(&outcomes)
            .find(|(c, _)| c.mode == mode && c.gpus == 1)
            .map(|(_, o)| o.p99_ms)
            .expect("baseline cell exists");
        let mut ep: Vec<(&Cell, &CellOutcome)> = cells
            .iter()
            .zip(&outcomes)
            .filter(|(c, _)| c.mode == mode && c.gpus > 1)
            .collect();
        ep.sort_by(|a, b| a.1.p99_ms.total_cmp(&b.1.p99_ms));
        let (best_cell, best) = ep.first().expect("EP cells exist");
        let (_, worst) = ep.last().expect("EP cells exist");
        let best_winner = if best.p99_ms < baseline {
            "ep_wins"
        } else {
            "offload_wins"
        };
        let worst_winner = if worst.p99_ms < baseline {
            "ep_wins"
        } else {
            "offload_wins"
        };
        summary.row(vec![
            mode.name().into(),
            format!("{baseline:.2}"),
            format!("{:.2}", best.p99_ms),
            format!(
                "{}x/{}/{}",
                best_cell.gpus,
                best_cell.placement_name(),
                best_cell.backend_name()
            ),
            format!("{:.2}", worst.p99_ms),
            best_winner.into(),
            worst_winner.into(),
        ]);

        // The trade-off claims under test.
        match mode {
            BudgetMode::PerGpuFixed => assert!(
                best.p99_ms < baseline,
                "with per-GPU-fixed budgets, some EP cell must beat host \
                 offloading on P99: best EP {:.2} ms vs offload {baseline:.2} ms",
                best.p99_ms
            ),
            BudgetMode::AggregateFixed => assert!(
                worst.p99_ms > baseline,
                "with an aggregate-fixed budget, EP's all2all toll must cost \
                 some cell the P99 race: worst EP {:.2} ms vs offload {baseline:.2} ms",
                worst.p99_ms
            ),
        }
    }
    summary.print();

    let path = write_csv(&table, "fig17_ep_all2all").expect("write CSV");
    println!("\nwrote {}", path.display());
    let path = write_csv(&summary, "fig17_ep_summary").expect("write CSV");
    println!("wrote {}", path.display());
}
