//! Figure 12 (cluster extension): multi-replica scaling under three
//! routing policies — round-robin, join-shortest-queue, and fMoE's
//! semantic-affinity routing.
//!
//! Each cell replays the same LMSYS-style clustered workload (Azure
//! arrival timings, rate scaled with the sweep) through a
//! [`fmoe_cluster::Cluster`] of N replicas. Every replica starts with an
//! Expert Map Store warmed on a *disjoint shard* of the dataset's
//! semantic clusters — the steady state a fleet reaches when requests
//! were ever routed with any locality at all — and keeps learning
//! online. The policies then differ only in where they send each
//! arriving request:
//!
//! * **round-robin** ignores both load and history (the fleet baseline);
//! * **jsq** chases load only;
//! * **semantic-affinity** sends each prompt to the replica whose store
//!   has seen similar prompts (via the `top_k_cosine_slab` fast path),
//!   with a JSQ escape hatch under imbalance.
//!
//! The shape to look for: at equal load and equal shed counts (no SLO —
//! nothing sheds), semantic affinity wins fleet cache hit rate over
//! round-robin, because each replica's cache serves a narrower expert
//! population. The price shows up in the queue-depth columns.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin fig12_cluster_scaling [--quick] [--jobs N]
//! ```
//!
//! `--jobs N` fans the independent (replicas, rate, policy) cells across
//! worker threads; output bytes are identical to a sequential run.

use fmoe::predictor::HistoryRequest;
use fmoe::{FmoeConfig, FmoePredictor};
use fmoe_bench::harness::ParallelRunner;
use fmoe_bench::report::{write_csv, Table};
use fmoe_cluster::{AffinityConfig, Cluster, RoutingPolicy};
use fmoe_memsim::Topology;
use fmoe_model::{presets, GateParams, GateSimulator, GpuSpec, ModelConfig, RequestRouting};
use fmoe_serving::{EngineBuilder, EngineConfig};
use fmoe_workload::{AzureTraceSpec, DatasetSpec, TraceEvent};

fn model() -> ModelConfig {
    presets::small_test_model()
}

fn gate() -> GateSimulator {
    let m = model();
    GateSimulator::new(m.clone(), GateParams::for_model(&m))
}

/// The clustered workload: LMSYS-style prompts on Azure-style arrivals,
/// with the arrival *rate* scaled by `rate_scale` (interarrival means
/// divided) so the sweep holds per-replica load constant as the fleet
/// grows.
fn trace(num_requests: u64, rate_scale: f64) -> Vec<TraceEvent> {
    let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::lmsys_chat());
    spec.num_requests = num_requests;
    spec.quiet_interarrival_ms /= rate_scale;
    spec.burst_interarrival_ms /= rate_scale;
    spec.generate()
}

/// A replica predictor warmed on its shard of the dataset's semantic
/// clusters (cluster id mod replica count), so the fleet starts in the
/// specialized steady state affinity routing converges to.
fn warmed_predictor(replica: usize, replicas: usize) -> FmoePredictor {
    let m = model();
    let mut p = FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m));
    let clusters = DatasetSpec::lmsys_chat().num_clusters;
    let hist: Vec<HistoryRequest> = (0..clusters)
        .filter(|c| (*c as usize) % replicas == replica)
        .map(|c| HistoryRequest {
            routing: RequestRouting {
                cluster: c,
                request_seed: 7_000 + c,
            },
            prompt_tokens: 32,
            iterations: 3,
        })
        .collect();
    p.populate_from_history(&gate(), &hist, 3);
    p
}

/// What one (replicas, rate, policy) cell contributes to the report,
/// computed inside the worker and formatted afterwards on the main
/// thread.
struct CellOutcome {
    served: usize,
    shed: usize,
    fleet_hit_rate: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_queue_depth: usize,
    affinity_routed: u64,
    jsq_fallbacks: u64,
    cold_fallbacks: u64,
    cdf_points: Vec<(f64, f64)>,
}

fn run_cell(replicas: usize, rate_scale: f64, policy: RoutingPolicy, requests: u64) -> CellOutcome {
    let m = model();
    // Fleet arrival rate grows with the replica count so per-replica
    // load stays constant across the sweep.
    let events = trace(requests, rate_scale * replicas as f64);
    let mut cluster = Cluster::new(gate(), policy, None);
    for replica in 0..replicas {
        let config = EngineConfig {
            // A quarter of the experts fit: pressure enough that routing
            // locality decides the hit rate.
            cache_budget_bytes: m.expert_bytes() * 16,
            preload_all: false,
            max_decode_iterations: Some(4),
            context_collection_ns: 10_000,
            framework_overhead_per_layer_ns: 50_000,
            ..EngineConfig::paper_default()
        };
        let engine = EngineBuilder::new(gate(), GpuSpec::rtx_3090(), Topology::single_gpu(8 << 30))
            .config(config);
        cluster.add_replica(engine, Box::new(warmed_predictor(replica, replicas)));
    }
    let report = cluster.dispatch(&events);
    let cdf = report.fleet_latency_cdf();
    CellOutcome {
        served: report.total_served(),
        shed: report.total_shed(),
        fleet_hit_rate: report.fleet_hit_rate(),
        p50_ms: report.fleet_latency_quantile_ns(0.5).unwrap_or(0.0) / 1e6,
        p99_ms: report.fleet_latency_quantile_ns(0.99).unwrap_or(0.0) / 1e6,
        max_queue_depth: report
            .replicas
            .iter()
            .map(|r| r.max_queue_depth)
            .max()
            .unwrap_or(0),
        affinity_routed: report.routing.affinity_routed,
        jsq_fallbacks: report.routing.jsq_fallbacks,
        cold_fallbacks: report.routing.cold_fallbacks,
        cdf_points: cdf
            .points(33)
            .into_iter()
            .map(|(ns, frac)| (ns / 1e6, frac))
            .collect(),
    }
}

fn policies() -> [RoutingPolicy; 3] {
    [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::JoinShortestQueue,
        RoutingPolicy::SemanticAffinity(AffinityConfig::default()),
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let runner = ParallelRunner::from_args();
    let requests: u64 = if quick { 32 } else { 96 };
    let replica_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let rate_scales: &[f64] = if quick { &[1.0, 4.0] } else { &[1.0, 2.0, 4.0] };

    let mut points = Vec::new();
    for &replicas in replica_counts {
        for &scale in rate_scales {
            for policy in policies() {
                points.push((replicas, scale, policy));
            }
        }
    }
    let outcomes = runner.run(&points, |_, &(replicas, scale, policy)| {
        run_cell(replicas, scale, policy, requests)
    });

    let mut table = Table::new(
        "Figure 12: cluster scaling — routing policy vs fleet locality and load",
        &[
            "replicas",
            "rate",
            "policy",
            "served",
            "shed",
            "hit_rate",
            "p50_ms",
            "p99_ms",
            "max_queue",
            "affinity",
            "jsq_fb",
            "cold_fb",
        ],
    );
    let mut cdf_table = Table::new(
        "Figure 12 raw fleet latency CDF points",
        &["replicas", "rate", "policy", "latency_ms", "fraction"],
    );
    for ((replicas, scale, policy), outcome) in points.iter().zip(&outcomes) {
        table.row(vec![
            replicas.to_string(),
            format!("{scale:.1}"),
            policy.name().into(),
            outcome.served.to_string(),
            outcome.shed.to_string(),
            format!("{:.4}", outcome.fleet_hit_rate),
            format!("{:.1}", outcome.p50_ms),
            format!("{:.1}", outcome.p99_ms),
            outcome.max_queue_depth.to_string(),
            outcome.affinity_routed.to_string(),
            outcome.jsq_fallbacks.to_string(),
            outcome.cold_fallbacks.to_string(),
        ]);
        for &(ms, frac) in &outcome.cdf_points {
            cdf_table.row(vec![
                replicas.to_string(),
                format!("{scale:.1}"),
                policy.name().into(),
                format!("{ms:.3}"),
                format!("{frac:.6}"),
            ]);
        }
    }
    table.print();

    // The cluster claim under test: at equal load and equal shed counts,
    // semantic-affinity routing beats round-robin on fleet cache hit
    // rate once there is more than one replica to specialize.
    for &replicas in replica_counts {
        if replicas < 2 {
            continue;
        }
        for &scale in rate_scales {
            let hit = |wanted: &str| {
                points
                    .iter()
                    .zip(&outcomes)
                    .find(|((r, s, p), _)| *r == replicas && *s == scale && p.name() == wanted)
                    .map(|(_, o)| (o.fleet_hit_rate, o.shed))
                    .expect("cell exists")
            };
            let (affinity, affinity_shed) = hit("semantic-affinity");
            let (round_robin, rr_shed) = hit("round-robin");
            assert_eq!(
                affinity_shed, rr_shed,
                "hit rates compared at unequal shed counts ({replicas}x @ {scale})"
            );
            assert!(
                affinity >= round_robin,
                "semantic affinity must not lose fleet hit rate to round-robin \
                 at {replicas} replicas, rate {scale}: {affinity:.4} < {round_robin:.4}"
            );
            println!(
                "affinity vs round-robin @ {replicas} replicas, rate {scale:.1}: \
                 hit rate {affinity:.4} vs {round_robin:.4}"
            );
        }
    }

    let path = write_csv(&table, "fig12_cluster_scaling").expect("write CSV");
    println!("\nwrote {}", path.display());
    let path = write_csv(&cdf_table, "fig12_cluster_cdf").expect("write CSV");
    println!("wrote {}", path.display());
}
