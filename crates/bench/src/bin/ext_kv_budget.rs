//! Extension experiment (not a paper figure): KV-cache-aware expert
//! budgets.
//!
//! In a real deployment the expert cache shares GPU memory with the
//! KV cache, which grows with context length and batch depth. With
//! `EngineConfig::kv_aware_budget`, the engine deducts the live KV bytes
//! from the expert budget every iteration — experts yield memory to long
//! contexts and reclaim it when requests retire. This experiment serves
//! long-context conversations under a fixed *total* memory budget and
//! compares the naive fixed expert budget (which would over-commit GPU
//! memory in reality) against the KV-aware one.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin ext_kv_budget
//! ```

use fmoe_bench::harness::{CellConfig, System};
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::presets;
use fmoe_serving::{AggregateMetrics, EngineConfig, ServingEngine};
use fmoe_workload::{ConversationSpec, DatasetSpec};

fn run(kv_aware: bool, long_contexts: bool) -> (AggregateMetrics, f64) {
    let model = presets::mixtral_8x7b();
    let mut cell = CellConfig::new(model.clone(), DatasetSpec::lmsys_chat(), System::Fmoe);
    cell.max_decode = 12;
    let gate = cell.gate();
    let (history, _) = cell.split();
    let mut predictor = cell.predictor(&gate, &history);
    let mut engine = ServingEngine::new(
        gate,
        fmoe_model::GpuSpec::rtx_3090(),
        cell.topology.clone(),
        System::Fmoe.cache_policy(model.experts_per_layer),
        EngineConfig {
            cache_budget_bytes: cell.cache_budget_bytes,
            max_decode_iterations: Some(cell.max_decode),
            kv_aware_budget: kv_aware,
            ..EngineConfig::paper_default()
        },
    );
    let mut spec = ConversationSpec::chat(DatasetSpec::lmsys_chat(), 6, 3);
    if long_contexts {
        // Agentic-style dialogues: thousands of tokens join per turn.
        spec.user_tokens_per_turn = 4000;
    }
    let turns = spec.turns();
    let mut kv_peak_gb = 0.0f64;
    let kv_per_token = model.kv_bytes_per_token() as f64;
    let mut metrics = Vec::new();
    for t in &turns {
        kv_peak_gb = kv_peak_gb
            .max((t.prompt.prompt_tokens + t.prompt.output_tokens) as f64 * kv_per_token / 1e9);
        metrics.push(engine.serve_request(t.prompt, predictor.as_mut()));
    }
    (AggregateMetrics::from_requests(&metrics), kv_peak_gb)
}

fn main() {
    let mut table = Table::new(
        "Extension: KV-aware expert budgets (Mixtral-8x7B conversations)",
        &["contexts", "budgeting", "TPOT (ms)", "hit rate", "peak KV"],
    );
    for long in [false, true] {
        for kv_aware in [false, true] {
            let (a, kv_gb) = run(kv_aware, long);
            table.row(vec![
                if long {
                    "long (agentic)"
                } else {
                    "chat-length"
                }
                .into(),
                if kv_aware {
                    "KV-aware"
                } else {
                    "fixed (over-commits)"
                }
                .into(),
                format!("{:.0}", a.mean_tpot_ms),
                format!("{:.1}%", a.hit_rate * 100.0),
                format!("{kv_gb:.2} GB"),
            ]);
        }
    }
    table.print();
    let _ = write_csv(&table, "ext_kv_budget");
    println!("expected: for chat-length contexts the KV deduction is noise; for");
    println!("long contexts the KV-aware budget costs some hit rate and TPOT —");
    println!("the honest price of not over-committing GPU memory, which the");
    println!("fixed-budget row silently does.");
}
