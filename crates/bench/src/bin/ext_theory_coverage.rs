//! §4.4 theoretical analysis, checked empirically.
//!
//! The paper frames Expert Map Store sizing as minimum sphere covering and
//! cites bounds: keeping at least `2·L·J` maps guarantees that any new
//! iteration finds a stored map at least **75%** similar, and
//! `½·L·J·ln(L·J)` maps raise the floor to **98%**. This experiment fills
//! stores of increasing capacity from a broad workload and measures, for a
//! held-out population of fresh iterations, the *minimum* and mean best-
//! match similarity — the empirical version of the covering guarantee.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin ext_theory_coverage
//! ```

use fmoe::map::ExpertMap;
use fmoe::matcher::Matcher;
use fmoe::store::ExpertMapStore;
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::gate::TokenSpan;
use fmoe_model::{presets, GateParams, GateSimulator, ModelConfig, RequestRouting};

fn record(gate: &GateSimulator, routing: RequestRouting, iter: u64) -> (Vec<f64>, ExpertMap) {
    let span = TokenSpan::single(24 + iter);
    let rows: Vec<Vec<f64>> = (0..gate.config().num_layers)
        .map(|l| gate.iteration_distribution(routing, iter, l, span))
        .collect();
    (gate.semantic_embedding(routing, iter), ExpertMap::new(rows))
}

fn run_model(model: &ModelConfig, table: &mut Table) {
    let gate = GateSimulator::new(model.clone(), GateParams::for_model(model));
    let lj = (model.num_layers * model.experts_per_layer) as usize;
    let bound_75 = 2 * lj;
    let bound_98 = ((lj as f64) * (lj as f64).ln() / 2.0).ceil() as usize;

    let capacities = [
        lj / 2,
        lj,
        bound_75,
        2 * bound_75,
        bound_98.min(4 * bound_75),
    ];
    for &cap in &capacities {
        let cap = cap.max(8);
        let mut store = ExpertMapStore::new(
            cap,
            model.num_layers as usize,
            model.experts_per_layer as usize,
            3,
        );
        // Fill with a broad population (many clusters, many phases); the
        // redundancy dedup keeps the most diverse `cap` of them.
        let mut i = 0u64;
        while (store.stats().appended + store.stats().replaced) < (cap as u64) * 3 {
            let routing = RequestRouting {
                cluster: i % 64,
                request_seed: i,
            };
            let (emb, map) = record(&gate, routing, i % 8);
            store.insert(emb, map);
            i += 1;
        }
        // Held-out fresh iterations: measure best trajectory similarity.
        let mut min_score = f64::INFINITY;
        let mut sum = 0.0;
        let mut n = 0.0;
        for q in 0..60u64 {
            let routing = RequestRouting {
                cluster: 1000 + q % 64,
                request_seed: 999_000 + q,
            };
            let (_, map) = record(&gate, routing, q % 8);
            let m = Matcher::trajectory_match(&store, map.layers()).expect("store non-empty");
            min_score = min_score.min(m.score);
            sum += m.score;
            n += 1.0;
        }
        let band = if cap >= bound_98 {
            "claim: >=98%"
        } else if cap >= bound_75 {
            "claim: >=75%"
        } else {
            "(below bound)"
        };
        table.row(vec![
            model.name.clone(),
            cap.to_string(),
            format!("{:.0}xLJ", cap as f64 / lj as f64),
            format!("{:.1}%", min_score * 100.0),
            format!("{:.1}%", sum / n * 100.0),
            band.into(),
        ]);
    }
}

fn main() {
    let mut table = Table::new(
        "Extension: empirical check of the paper's sphere-covering bounds (section 4.4)",
        &[
            "model",
            "store size",
            "vs LJ",
            "min similarity",
            "mean similarity",
            "paper bound",
        ],
    );
    // The small test model keeps the sweep fast; Mixtral confirms at scale.
    run_model(&presets::small_test_model(), &mut table);
    run_model(&presets::mixtral_8x7b(), &mut table);
    table.print();
    let _ = write_csv(&table, "ext_theory_coverage");
    println!("measured: the 75% floor clears at the paper's 2*L*J scale for both");
    println!("models. The 98% asymptote is NOT reached in our substrate: the");
    println!("router's irreducible per-iteration noise caps the best achievable");
    println!("match in the high 80s/low 90s regardless of store size — the");
    println!("covering bound presumes a noiseless metric space. The practical");
    println!("conclusion (the similarity curve saturates around 1-2*L*J maps,");
    println!("so a ~1K store suffices) matches the paper's Fig. 14a and ours.");
}
