//! Router-calibration report: measures the four statistical properties
//! (P1–P4, `DESIGN.md` §3) the synthetic gate must exhibit for the
//! reproduction's conclusions to transfer, for every model preset.
//!
//! Run this after touching `GateParams` — if a property drifts out of its
//! band, the policy comparisons lose their footing before any experiment
//! runs.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin validate_gate
//! ```

use fmoe_bench::report::{write_csv, Table};
use fmoe_model::gate::TokenSpan;
use fmoe_model::{presets, GateParams, GateSimulator, ModelConfig, RequestRouting};
use fmoe_stats::{cosine_similarity, shannon_entropy, shannon_entropy_of_counts};

struct GateReport {
    fine_entropy_frac: f64,
    coarse_entropy_frac: f64,
    same_cluster_sim: f64,
    cross_cluster_sim: f64,
    overlap_d1: f64,
    overlap_d4: f64,
}

fn measure(model: &ModelConfig) -> GateReport {
    let gate = GateSimulator::new(model.clone(), GateParams::for_model(model));
    let j = model.experts_per_layer as usize;
    let uniform = (j as f64).log2();

    // P1 / P2: fine vs coarse entropy over decode iterations.
    let mut fine = 0.0;
    let mut coarse = 0.0;
    let mut n = 0.0;
    for r in 0..10u64 {
        let routing = RequestRouting {
            cluster: r % 5,
            request_seed: r,
        };
        for layer in (0..model.num_layers).step_by(4) {
            let mut counts = vec![0.0; j];
            for iter in 1..=24u64 {
                let span = TokenSpan::single(32 + iter);
                let dist = gate.iteration_distribution(routing, iter, layer, span);
                fine += shannon_entropy(&dist);
                for s in gate.activated_slots(routing, iter, layer, span) {
                    counts[s as usize] += 1.0;
                }
                n += 1.0;
            }
            coarse += shannon_entropy_of_counts(&counts) * 24.0;
        }
    }
    let fine_entropy_frac = fine / n / uniform;
    let coarse_entropy_frac = coarse / n / uniform;

    // P3: embedding separation between same- and cross-cluster requests.
    let mut same = 0.0;
    let mut cross = 0.0;
    let mut m = 0.0;
    for i in 0..20u64 {
        let a = gate.semantic_embedding(
            RequestRouting {
                cluster: i % 4,
                request_seed: 100 + i,
            },
            i % 4,
        );
        let b = gate.semantic_embedding(
            RequestRouting {
                cluster: i % 4,
                request_seed: 900 + i,
            },
            i % 4,
        );
        let c = gate.semantic_embedding(
            RequestRouting {
                cluster: 50 + (i % 4),
                request_seed: 500 + i,
            },
            i % 4,
        );
        same += cosine_similarity(&a, &b);
        cross += cosine_similarity(&a, &c);
        m += 1.0;
    }
    let same_cluster_sim = same / m;
    let cross_cluster_sim = cross / m;

    // P4: top-k overlap between layer l and l+d.
    let overlap = |d: u32| -> f64 {
        let mut total = 0.0;
        let mut cnt = 0.0;
        for iter in 1..=20u64 {
            let routing = RequestRouting {
                cluster: 7,
                request_seed: 77,
            };
            for l in (0..model.num_layers - d).step_by(3) {
                let from = gate.token_top_k(routing, iter, l, iter);
                let to = gate.token_top_k(routing, iter, l + d, iter);
                let inter = from.iter().filter(|s| to.contains(s)).count();
                total += inter as f64 / to.len() as f64;
                cnt += 1.0;
            }
        }
        total / cnt
    };

    GateReport {
        fine_entropy_frac,
        coarse_entropy_frac,
        same_cluster_sim,
        cross_cluster_sim,
        overlap_d1: overlap(1),
        overlap_d4: overlap(4),
    }
}

fn main() {
    let mut table = Table::new(
        "Gate calibration: measured P1-P4 vs required bands",
        &["model", "property", "measured", "band", "ok"],
    );
    let mut all_ok = true;
    for model in presets::evaluation_models()
        .into_iter()
        .chain([presets::deepseek_moe_16b(), presets::small_test_model()])
    {
        let r = measure(&model);
        // Chance-level overlap for top-K of J is K/J; adjacent-layer
        // speculation must beat it by at least 4x (capped: for small J
        // chance is already high, so a 0.5 absolute floor applies).
        let chance = f64::from(model.top_k) / f64::from(model.experts_per_layer);
        let overlap_floor = (4.0 * chance).clamp(0.2, 0.5);
        let checks: Vec<(&str, f64, f64, f64)> = vec![
            // (name, measured, lo, hi)
            ("P1 fine entropy / uniform", r.fine_entropy_frac, 0.05, 0.75),
            (
                "P2 coarse entropy / uniform",
                r.coarse_entropy_frac,
                0.85,
                1.0,
            ),
            (
                "P3 same-cluster embedding sim",
                r.same_cluster_sim,
                0.55,
                1.0,
            ),
            (
                "P3 cross-cluster embedding sim",
                r.cross_cluster_sim,
                -0.3,
                0.5,
            ),
            ("P4 top-k overlap at d=1", r.overlap_d1, overlap_floor, 1.0),
            (
                "P4 overlap decay (d=1 minus d=4)",
                r.overlap_d1 - r.overlap_d4,
                0.05,
                1.0,
            ),
        ];
        for (name, v, lo, hi) in checks {
            let ok = (lo..=hi).contains(&v);
            all_ok &= ok;
            table.row(vec![
                model.name.clone(),
                name.into(),
                format!("{v:.3}"),
                format!("[{lo:.2}, {hi:.2}]"),
                if ok { "yes" } else { "OUT OF BAND" }.into(),
            ]);
        }
    }
    table.print();
    let _ = write_csv(&table, "validate_gate");
    if all_ok {
        println!("all properties within band: the router is calibrated.");
    } else {
        println!("!! at least one property out of band: experiment conclusions");
        println!("!! may not transfer — re-tune GateParams before trusting runs.");
        std::process::exit(1);
    }
}
