//! Placement ablation (not a paper figure): why the paper's §5
//! round-robin expert-parallel placement matters.
//!
//! Round-robin spreads every layer's experts across all host links, so a
//! layer's on-demand loads and prefetches proceed in parallel. The naive
//! alternative — contiguous layer blocks per GPU — funnels each layer's
//! traffic through a single link, serializing exactly the transfers that
//! sit on the critical path. This bench also includes SwapMoE in the
//! system lineup as a related-work reference point.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin ablation_placement
//! ```

use fmoe_bench::harness::{CellConfig, System};
use fmoe_bench::report::{write_csv, Table};
use fmoe_cache::Placement;
use fmoe_model::presets;
use fmoe_serving::{AggregateMetrics, EngineConfig, ServingEngine};
use fmoe_workload::DatasetSpec;

fn run(system: System, placement: Placement) -> AggregateMetrics {
    let model = presets::mixtral_8x7b();
    let mut cell = CellConfig::new(model.clone(), DatasetSpec::lmsys_chat(), system);
    cell.test_requests = 8;
    cell.max_decode = 16;
    let gate = cell.gate();
    let (history, test) = cell.split();
    let mut predictor = cell.predictor(&gate, &history);
    let mut engine = ServingEngine::new(
        gate,
        fmoe_model::GpuSpec::rtx_3090(),
        cell.topology.clone(),
        system.cache_policy(model.experts_per_layer),
        EngineConfig {
            cache_budget_bytes: cell.cache_budget_bytes,
            max_decode_iterations: Some(cell.max_decode),
            placement,
            ..EngineConfig::paper_default()
        },
    );
    for p in history.iter().take(cell.warmup_requests) {
        let _ = engine.serve_request(*p, predictor.as_mut());
    }
    let metrics: Vec<_> = test
        .iter()
        .take(cell.test_requests)
        .map(|p| engine.serve_request(*p, predictor.as_mut()))
        .collect();
    AggregateMetrics::from_requests(&metrics)
}

fn main() {
    let mut table = Table::new(
        "Ablation: expert-parallel placement (Mixtral-8x7B, 6 GPUs)",
        &["system", "placement", "TTFT (ms)", "TPOT (ms)", "hit rate"],
    );
    for system in [System::Fmoe, System::DeepSpeed, System::SwapMoe] {
        for (name, placement) in [
            ("round-robin (paper)", Placement::RoundRobin),
            ("layer-contiguous", Placement::LayerContiguous),
        ] {
            let a = run(system, placement);
            table.row(vec![
                system.name().into(),
                name.into(),
                format!("{:.0}", a.mean_ttft_ms),
                format!("{:.0}", a.mean_tpot_ms),
                format!("{:.1}%", a.hit_rate * 100.0),
            ]);
        }
    }
    table.print();
    let _ = write_csv(&table, "ablation_placement");
    println!("expected: layer-contiguous placement serializes each layer's");
    println!("transfers on one link, inflating TTFT/TPOT for every system —");
    println!("the mechanism behind the paper's round-robin choice (§5).");
}
