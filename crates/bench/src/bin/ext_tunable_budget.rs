//! Extension experiment (not a paper figure): SwapMoE-style tunable
//! memory budgets.
//!
//! A serving deployment cannot dedicate a fixed slice of GPU memory to
//! experts: KV-cache pressure grows with context length and batch depth.
//! SwapMoE (related work, §7) keeps a tunable set of critical experts
//! under a budget that moves at runtime. Our engine supports the same:
//! `ServingEngine::set_cache_budget` retunes mid-serving, evicting
//! policy-chosen victims immediately.
//!
//! This experiment serves a request stream while the budget oscillates
//! between a roomy and a starved configuration, and compares fMoE's
//! probability-guided eviction against LRU under identical oscillation.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin ext_tunable_budget
//! ```

use fmoe_bench::harness::{CellConfig, System};
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::presets;
use fmoe_serving::AggregateMetrics;
use fmoe_workload::DatasetSpec;

fn run(system: System, oscillate: bool) -> AggregateMetrics {
    let model = presets::phi35_moe();
    let mut cell = CellConfig::new(model.clone(), DatasetSpec::lmsys_chat(), system);
    cell.test_requests = 12;
    cell.max_decode = 16;
    let high = (model.total_expert_bytes() as f64 * 0.45) as u64;
    let low = (model.total_expert_bytes() as f64 * 0.15) as u64;
    cell.cache_budget_bytes = high;

    let gate = cell.gate();
    let (history, test) = cell.split();
    let mut predictor = cell.predictor(&gate, &history);
    let mut engine = cell.engine(gate);
    for p in history.iter().take(cell.warmup_requests) {
        let _ = engine.serve_request(*p, predictor.as_mut());
    }
    let mut metrics = Vec::new();
    for (i, p) in test.iter().take(cell.test_requests).enumerate() {
        if oscillate {
            // Every third request the KV cache "grows": experts must
            // yield memory; afterwards it is reclaimed.
            let budget = if i % 3 == 2 { low } else { high };
            let _ = engine.set_cache_budget(budget);
        }
        metrics.push(engine.serve_request(*p, predictor.as_mut()));
    }
    AggregateMetrics::from_requests(&metrics)
}

fn main() {
    let mut table = Table::new(
        "Extension: serving under an oscillating expert-cache budget (Phi-3.5-MoE)",
        &["system", "budget", "TPOT (ms)", "hit rate"],
    );
    for system in [System::Fmoe, System::MixtralOffloading, System::MoeInfinity] {
        for oscillate in [false, true] {
            let a = run(system, oscillate);
            table.row(vec![
                system.name().into(),
                if oscillate {
                    "oscillating 45% <-> 15%"
                } else {
                    "steady 45%"
                }
                .into(),
                format!("{:.0}", a.mean_tpot_ms),
                format!("{:.1}%", a.hit_rate * 100.0),
            ]);
        }
    }
    table.print();
    let _ = write_csv(&table, "ext_tunable_budget");
    println!("expected: oscillation costs every system, but fMoE's searched-map");
    println!("eviction priorities pick better victims under pressure, so it");
    println!("degrades least and stays the fastest system in both regimes.");
}
