//! Figure 3: expert-pattern predictability in coarse vs. fine granularity.
//!
//! * 3a — coarse vs. fine activation heatmaps for Mixtral-8×7B
//!   (`--heatmap` prints them as ASCII).
//! * 3b — mean per-layer Shannon entropy of coarse-grained
//!   (request-level aggregated counts) vs. fine-grained (iteration-level)
//!   patterns, for 3 models × 2 datasets.
//! * 3c — entropy growth as activations aggregate over iterations.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin fig3_entropy [--heatmap]
//! ```

use fmoe_bench::report::{write_csv, Table};
use fmoe_model::gate::TokenSpan;
use fmoe_model::{presets, GateParams, GateSimulator, ModelConfig};
use fmoe_stats::shannon_entropy_of_counts;
use fmoe_workload::DatasetSpec;

const REQUESTS: u64 = 40;
const ITERATIONS: u64 = 24;

fn gate_for(model: &ModelConfig) -> GateSimulator {
    GateSimulator::new(model.clone(), GateParams::for_model(model))
}

/// Per-request coarse and fine entropies, averaged over layers.
fn entropies(model: &ModelConfig, dataset: &DatasetSpec) -> (f64, f64) {
    let gate = gate_for(model);
    let j = model.experts_per_layer as usize;
    let mut coarse_sum = 0.0;
    let mut fine_sum = 0.0;
    let mut n = 0.0;
    for prompt in dataset.prompts(REQUESTS) {
        for layer in 0..model.num_layers {
            let mut request_counts = vec![0.0; j];
            let mut fine_acc = 0.0;
            let iters = prompt.iterations().clamp(1, ITERATIONS);
            for iter in 0..iters {
                let span = if iter == 0 {
                    TokenSpan::prefill(prompt.prompt_tokens)
                } else {
                    TokenSpan::single(prompt.prompt_tokens + iter - 1)
                };
                let mut iter_counts = vec![0.0; j];
                for slot in gate.activated_slots(prompt.routing, iter, layer, span) {
                    iter_counts[slot as usize] += 1.0;
                    request_counts[slot as usize] += 1.0;
                }
                fine_acc += shannon_entropy_of_counts(&iter_counts);
            }
            coarse_sum += shannon_entropy_of_counts(&request_counts);
            fine_sum += fine_acc / iters as f64;
            n += 1.0;
        }
    }
    (coarse_sum / n, fine_sum / n)
}

/// Entropy of counts aggregated over the first `i` iterations, mean over
/// layers and requests — the Fig. 3c growth curve.
fn entropy_through_iterations(model: &ModelConfig, dataset: &DatasetSpec) -> Vec<f64> {
    let gate = gate_for(model);
    let j = model.experts_per_layer as usize;
    let mut per_prefix = vec![0.0; ITERATIONS as usize];
    let mut n = 0.0;
    // Aggregate over *decode* iterations: the prefill step spans hundreds
    // of tokens and would saturate the window at i = 1 for long-prompt
    // datasets, hiding the growth the paper plots.
    for prompt in dataset.prompts(REQUESTS / 2) {
        for layer in (0..model.num_layers).step_by(4) {
            let mut counts = vec![0.0; j];
            for i in 0..ITERATIONS {
                let iter = i + 1;
                let span = TokenSpan::single(prompt.prompt_tokens + iter - 1);
                for slot in gate.activated_slots(prompt.routing, iter, layer, span) {
                    counts[slot as usize] += 1.0;
                }
                per_prefix[i as usize] += shannon_entropy_of_counts(&counts);
            }
            n += 1.0;
        }
    }
    per_prefix.iter().map(|e| e / n).collect()
}

fn heatmap(model: &ModelConfig) {
    let gate = gate_for(model);
    let dataset = DatasetSpec::lmsys_chat();
    let prompt = dataset.prompt(3);
    let j = model.experts_per_layer as usize;
    let shades = [' ', '.', ':', '+', '#', '@'];

    println!("fine-grained heatmaps (iterations 1..4), layers 0..16 x experts:");
    for iter in 1..=4u64 {
        println!("  iteration {iter}:");
        for layer in 0..16.min(model.num_layers) {
            let span = TokenSpan::single(prompt.prompt_tokens + iter - 1);
            let mut row = vec![0.0; j];
            for slot in gate.activated_slots(prompt.routing, iter, layer, span) {
                row[slot as usize] = 1.0;
            }
            let line: String = row
                .iter()
                .map(|&v| if v > 0.0 { '#' } else { '.' })
                .collect();
            println!("    L{layer:<2} {line}");
        }
    }

    println!(
        "\ncoarse-grained heatmap (aggregated over {} iterations):",
        ITERATIONS
    );
    for layer in 0..16.min(model.num_layers) {
        let mut counts = vec![0.0; j];
        for iter in 0..ITERATIONS {
            let span = if iter == 0 {
                TokenSpan::prefill(prompt.prompt_tokens)
            } else {
                TokenSpan::single(prompt.prompt_tokens + iter - 1)
            };
            for slot in gate.activated_slots(prompt.routing, iter, layer, span) {
                counts[slot as usize] += 1.0;
            }
        }
        let max = counts.iter().copied().fold(0.0, f64::max).max(1.0);
        let line: String = counts
            .iter()
            .map(|&c| shades[((c / max) * (shades.len() - 1) as f64) as usize])
            .collect();
        println!("    L{layer:<2} {line}");
    }
    println!("  (fine rows are sparse and structured; the aggregate washes out)\n");
}

fn main() {
    let want_heatmap = std::env::args().any(|a| a == "--heatmap");
    if want_heatmap {
        heatmap(&presets::mixtral_8x7b());
    }

    let mut t3b = Table::new(
        "Figure 3b: mean entropy per layer, coarse vs fine granularity (bits)",
        &["model", "dataset", "coarse", "fine", "uniform bound"],
    );
    for model in presets::evaluation_models() {
        for dataset in DatasetSpec::evaluation_datasets() {
            let (coarse, fine) = entropies(&model, &dataset);
            t3b.row(vec![
                model.name.clone(),
                dataset.name.clone(),
                format!("{coarse:.2}"),
                format!("{fine:.2}"),
                format!("{:.2}", f64::from(model.experts_per_layer).log2()),
            ]);
        }
    }
    t3b.print();
    let _ = write_csv(&t3b, "fig3b_entropy");

    let mut t3c = Table::new(
        "Figure 3c: entropy of patterns aggregated through iterations (bits)",
        &[
            "model", "dataset", "i=1", "i=2", "i=4", "i=8", "i=16", "i=24",
        ],
    );
    for model in presets::evaluation_models() {
        for dataset in DatasetSpec::evaluation_datasets() {
            let curve = entropy_through_iterations(&model, &dataset);
            t3c.row(vec![
                model.name.clone(),
                dataset.name.clone(),
                format!("{:.2}", curve[0]),
                format!("{:.2}", curve[1]),
                format!("{:.2}", curve[3]),
                format!("{:.2}", curve[7]),
                format!("{:.2}", curve[15]),
                format!("{:.2}", curve[23]),
            ]);
        }
    }
    t3c.print();
    let _ = write_csv(&t3c, "fig3c_entropy_iterations");

    println!("expected shape (paper Fig. 3): coarse >> fine everywhere; the");
    println!("aggregated entropy grows monotonically with the iteration window.");
}
