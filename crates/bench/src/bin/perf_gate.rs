//! Perf regression gate: compares a fresh `BENCH_perf.json` (written by
//! `perf_smoke`) against the committed `BENCH_baseline.json` and exits
//! nonzero on regression (DESIGN.md §16).
//!
//! Gate contract:
//!
//! * `sweep_speedup` below 1.0 fails whenever a parallel sweep actually
//!   ran (a `null` speedup — single effective worker — is skipped).
//! * The matcher fast path falling behind its reference scan fails.
//! * Per-scenario throughput regressions beyond the tolerance
//!   (default 15%) fail — but only when the baseline and current runs
//!   share a parallelism + mode fingerprint; absolute wall-clock numbers
//!   from different machines or workload sizes are skipped, visibly.
//!
//! The full delta table is printed on every run (CI shows it on
//! failure).
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin perf_gate -- \
//!     [--baseline BENCH_baseline.json] [--current BENCH_perf.json] \
//!     [--tolerance 0.15]
//! ```

use fmoe_bench::perf::{self, PerfReport};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    let eq = format!("{name}=");
    let mut take_next = false;
    for arg in args {
        if take_next {
            return Some(arg.clone());
        }
        if arg == name {
            take_next = true;
        } else if let Some(v) = arg.strip_prefix(&eq) {
            return Some(v.to_string());
        }
    }
    None
}

fn load(path: &str) -> Result<PerfReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    PerfReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path =
        flag_value(&args, "--baseline").unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let current_path =
        flag_value(&args, "--current").unwrap_or_else(|| "BENCH_perf.json".to_string());
    let tolerance = flag_value(&args, "--tolerance")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(perf::DEFAULT_TOLERANCE);

    let baseline = match load(&baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            std::process::exit(2);
        }
    };
    let current = match load(&current_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            std::process::exit(2);
        }
    };

    let outcome = perf::gate(&baseline, &current, tolerance);
    println!(
        "perf_gate: {current_path} vs {baseline_path} (tolerance {:.0}%)",
        tolerance * 100.0
    );
    print!("{}", outcome.delta_table());
    if outcome.passed() {
        println!("perf_gate: PASS");
    } else {
        println!("perf_gate: FAIL — throughput regressed beyond tolerance (see table)");
        std::process::exit(1);
    }
}
