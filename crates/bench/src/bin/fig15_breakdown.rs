//! Figure 15: latency breakdown of one fMoE inference iteration.
//!
//! Reports the per-iteration cost of every fMoE operation, marking which
//! run asynchronously (off the critical path). The paper's claim (§6.7):
//! excluding asynchronous tasks, fMoE's added synchronous delay is under
//! 30 ms — below 5% of the iteration.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin fig15_breakdown
//! ```

use fmoe_bench::harness::{CellConfig, System};
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::presets;
use fmoe_workload::DatasetSpec;

fn main() {
    let mut table = Table::new(
        "Figure 15: per-iteration latency breakdown of fMoE (ms)",
        &[
            "model",
            "iteration",
            "compute",
            "on-demand wait",
            "ctx collection",
            "matching*",
            "prefetch*",
            "map update*",
            "sync overhead",
        ],
    );
    for model in presets::evaluation_models() {
        let mut cell = CellConfig::new(model.clone(), DatasetSpec::lmsys_chat(), System::Fmoe);
        cell.test_requests = 10;
        cell.max_decode = 20;
        let gate = cell.gate();
        let (history, test) = cell.split();
        let mut predictor = cell.predictor(&gate, &history);
        let mut engine = cell.engine(gate);
        for p in history.iter().take(cell.warmup_requests) {
            let _ = engine.serve_request(*p, predictor.as_mut());
        }
        let _ = engine.take_breakdown();
        for p in test.iter().take(cell.test_requests) {
            let _ = engine.serve_request(*p, predictor.as_mut());
        }
        let b = engine.take_breakdown();
        let sync_ms = b.sync_overhead_per_iteration_ms();
        let iter_ms = b.per_iteration_ms(b.iteration_total_ns);
        table.row(vec![
            model.name.clone(),
            format!("{iter_ms:.1}"),
            format!("{:.1}", b.per_iteration_ms(b.compute_ns)),
            format!("{:.1}", b.per_iteration_ms(b.on_demand_wait_ns)),
            format!("{:.1}", b.per_iteration_ms(b.context_collection_ns)),
            format!("{:.1}", b.per_iteration_ms(b.matching_ns)),
            format!("{:.1}", b.per_iteration_ms(b.prefetch_async_ns)),
            format!("{:.1}", b.per_iteration_ms(b.update_async_ns)),
            format!("{sync_ms:.1} ({:.1}%)", sync_ms / iter_ms * 100.0),
        ]);
    }
    table.print();
    let _ = write_csv(&table, "fig15_breakdown");
    println!("columns marked * are asynchronous — matching, prefetch wire time");
    println!("and store updates overlap compute and do not extend the critical");
    println!("path. expected (paper §6.7): the synchronous overhead column stays");
    println!("below 30 ms and below 5% of the iteration for all three models.");
}
