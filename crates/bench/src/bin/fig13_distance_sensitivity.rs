//! Figure 13: fMoE's TTFT and TPOT at different prefetch distances.
//!
//! The paper profiles `d = 3` as the sweet spot: below it the matcher's
//! asynchronous pipeline cannot hide its own latency (prefetches issue
//! too late), above it prediction accuracy decays (Fig. 4).
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin fig13_distance_sensitivity
//! ```

use fmoe_bench::harness::{CellConfig, System};
use fmoe_bench::plot::{LinePlot, Series};
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::presets;
use fmoe_workload::DatasetSpec;

const DISTANCES: [u32; 6] = [1, 2, 3, 4, 6, 8];

fn main() {
    let mut ttft = Table::new(
        "Figure 13: fMoE TTFT (ms) vs prefetch distance",
        &["model", "d=1", "d=2", "d=3", "d=4", "d=6", "d=8"],
    );
    let mut tpot = Table::new(
        "Figure 13: fMoE TPOT (ms) vs prefetch distance",
        &["model", "d=1", "d=2", "d=3", "d=4", "d=6", "d=8"],
    );
    let mut plot = LinePlot::new(
        "Fig. 13 — fMoE TPOT vs prefetch distance",
        "prefetch distance d",
        "TPOT (ms)",
    )
    .with_free_y();
    for model in presets::evaluation_models() {
        let mut ttft_row = vec![model.name.clone()];
        let mut tpot_row = vec![model.name.clone()];
        let mut points = Vec::new();
        for &d in &DISTANCES {
            let mut cell = CellConfig::new(model.clone(), DatasetSpec::lmsys_chat(), System::Fmoe);
            cell.prefetch_distance = d;
            cell.test_requests = 10;
            cell.max_decode = 20;
            let out = cell.run_offline();
            ttft_row.push(format!("{:.0}", out.aggregate.mean_ttft_ms));
            tpot_row.push(format!("{:.0}", out.aggregate.mean_tpot_ms));
            points.push((f64::from(d), out.aggregate.mean_tpot_ms));
        }
        plot.series(Series::new(&model.name, points));
        ttft.row(ttft_row);
        tpot.row(tpot_row);
    }
    let _ = plot.write_svg("fig13_tpot");
    ttft.print();
    tpot.print();
    let _ = write_csv(&ttft, "fig13_ttft");
    let _ = write_csv(&tpot, "fig13_tpot");
    println!("expected shape (paper Fig. 13): a shallow U — small d cannot");
    println!("hide matching + transfer latency, large d mispredicts more; the");
    println!("paper (and our default) settles at d = 3.");
}
