//! Figure 8: Pearson correlation between expert-map similarity scores
//! (semantic and trajectory) and the expert hit rate achieved when
//! following the matched maps, across 3 models × 2 datasets.
//!
//! Methodology (§4.3): per test iteration, run the map search, record the
//! match score, and measure the coverage the matched map's selections
//! achieve against the truly activated experts; then correlate over all
//! iterations.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin fig8_pearson
//! ```

use fmoe::map::ExpertMap;
use fmoe::matcher::{Matcher, TrajectoryTracker};
use fmoe::selection::select_top_n;
use fmoe::store::ExpertMapStore;
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::gate::TokenSpan;
use fmoe_model::{presets, GateParams, GateSimulator, ModelConfig};
use fmoe_stats::pearson_correlation;
use fmoe_workload::{split, DatasetSpec, Prompt};

const DISTANCE: u32 = 3;

fn span_for(prompt: &Prompt, iter: u64) -> TokenSpan {
    if iter == 0 {
        TokenSpan::prefill(prompt.prompt_tokens)
    } else {
        TokenSpan::single(prompt.prompt_tokens + iter - 1)
    }
}

/// Collects per-iteration (semantic score, semantic coverage, trajectory
/// score, trajectory coverage) samples.
fn collect(model: &ModelConfig, dataset: &DatasetSpec) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let gate = GateSimulator::new(model.clone(), GateParams::for_model(model));
    let prompts = dataset.prompts(90);
    let (history, test) = split::paper_split(&prompts);
    let mut store = ExpertMapStore::new(
        1000,
        model.num_layers as usize,
        model.experts_per_layer as usize,
        DISTANCE,
    );
    for p in &history {
        for iter in 0..p.iterations().min(6) {
            let span = span_for(p, iter);
            let rows: Vec<Vec<f64>> = (0..model.num_layers)
                .map(|l| gate.iteration_distribution(p.routing, iter, l, span))
                .collect();
            store.insert(
                gate.semantic_embedding(p.routing, iter),
                ExpertMap::new(rows),
            );
        }
    }

    let budget = model.top_k as usize + 1;
    let mut sem_scores = Vec::new();
    let mut sem_cov = Vec::new();
    let mut traj_scores = Vec::new();
    let mut traj_cov = Vec::new();
    for p in test.iter().take(12) {
        for iter in 0..p.iterations().min(8) {
            let span = span_for(p, iter);
            // Semantic: match by embedding, score coverage over the first
            // d layers of the matched map.
            if let Some(m) =
                Matcher::semantic_match(&store, &gate.semantic_embedding(p.routing, iter))
            {
                let entry = store.entry(m.entry_index);
                let mut hits = 0usize;
                let mut total = 0usize;
                for l in 0..DISTANCE {
                    let sel = select_top_n(entry.map.layer(l as usize), budget);
                    for slot in gate.activated_slots(p.routing, iter, l, span) {
                        total += 1;
                        if sel.iter().any(|&(s, _)| s as u32 == slot) {
                            hits += 1;
                        }
                    }
                }
                if total > 0 {
                    sem_scores.push(m.score);
                    sem_cov.push(hits as f64 / total as f64);
                }
            }
            // Trajectory: per layer, match on the observed prefix and
            // score the matched map's selections at layer l + d.
            let mut tracker = TrajectoryTracker::new();
            tracker.reset(&store);
            let mut hits = 0usize;
            let mut total = 0usize;
            let mut score_sum = 0.0;
            let mut score_n = 0.0;
            for l in 0..model.num_layers {
                let dist = gate.iteration_distribution(p.routing, iter, l, span);
                tracker.observe_layer(&store, &dist);
                let target = l + DISTANCE;
                if target >= model.num_layers {
                    continue;
                }
                if let Some(m) = tracker.best(&store) {
                    let entry = store.entry(m.entry_index);
                    let sel = select_top_n(entry.map.layer(target as usize), budget);
                    for slot in gate.activated_slots(p.routing, iter, target, span) {
                        total += 1;
                        if sel.iter().any(|&(s, _)| s as u32 == slot) {
                            hits += 1;
                        }
                    }
                    score_sum += m.score;
                    score_n += 1.0;
                }
            }
            if total > 0 && score_n > 0.0 {
                traj_scores.push(score_sum / score_n);
                traj_cov.push(hits as f64 / total as f64);
            }
        }
    }
    (sem_scores, sem_cov, traj_scores, traj_cov)
}

fn main() {
    let mut table = Table::new(
        "Figure 8: Pearson correlation between similarity score and hit rate",
        &["model", "dataset", "semantic r", "trajectory r", "samples"],
    );
    for model in presets::evaluation_models() {
        for dataset in DatasetSpec::evaluation_datasets() {
            let (ss, sc, ts, tc) = collect(&model, &dataset);
            let sem_r = pearson_correlation(&ss, &sc).unwrap_or(f64::NAN);
            let traj_r = pearson_correlation(&ts, &tc).unwrap_or(f64::NAN);
            table.row(vec![
                model.name.clone(),
                dataset.name.clone(),
                format!("{sem_r:.3}"),
                format!("{traj_r:.3}"),
                format!("{}/{}", ss.len(), ts.len()),
            ]);
        }
    }
    table.print();
    let _ = write_csv(&table, "fig8_pearson");
    println!("expected shape (paper Fig. 8): clearly positive coefficients for");
    println!("both search modes across all models and datasets — high scores");
    println!("justify trusting the matched map (the basis for the dynamic δ).");
}
