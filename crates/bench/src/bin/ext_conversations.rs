//! Extension experiment (not a paper figure): multi-turn conversations.
//!
//! LMSYS-Chat-1M is a dialogue dataset, and a dialogue is the friendliest
//! workload for fMoE's semantic search: turn `t`'s expert maps land in the
//! store and predict turn `t+1` almost perfectly, while request-level
//! trackers see only washed-out aggregates. This experiment serves
//! multi-turn conversations from a *cold* store and reports the expert hit
//! rate by turn index, for fMoE and for MoE-Infinity.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin ext_conversations
//! ```

use fmoe_bench::harness::{CellConfig, System};
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::presets;
use fmoe_stats::Summary;
use fmoe_workload::{ConversationSpec, DatasetSpec};

const TURNS: u64 = 4;

fn per_turn_hit_rates(system: System) -> Vec<f64> {
    let model = presets::mixtral_8x7b();
    let mut cell = CellConfig::new(model, DatasetSpec::lmsys_chat(), system);
    cell.max_decode = 12;
    let spec = ConversationSpec::chat(DatasetSpec::lmsys_chat(), 8, TURNS);
    let gate = cell.gate();
    // Cold start: no history population.
    let mut predictor = cell.predictor(&gate, &[]);
    let mut engine = cell.engine(gate);
    let mut per_turn: Vec<Summary> = (0..TURNS).map(|_| Summary::new()).collect();
    for turn in spec.turns() {
        let m = engine.serve_request(turn.prompt, predictor.as_mut());
        per_turn[turn.turn as usize].record(m.hit_rate());
    }
    per_turn.iter().map(Summary::mean).collect()
}

fn main() {
    let mut table = Table::new(
        "Extension: expert hit rate by conversation turn (cold store, Mixtral-8x7B)",
        &["system", "turn 1", "turn 2", "turn 3", "turn 4"],
    );
    for system in [System::Fmoe, System::MoeInfinity, System::ProMoe] {
        let rates = per_turn_hit_rates(system);
        let mut row = vec![system.name().to_string()];
        row.extend(rates.iter().map(|r| format!("{:.1}%", r * 100.0)));
        table.row(row);
    }
    table.print();
    let _ = write_csv(&table, "ext_conversations");
    println!("expected: fMoE's hit rate jumps after turn 1 — the dialogue's own");
    println!("history becomes its best predictor via semantic search — while");
    println!("coarse trackers improve far less from the same observations.");
}
