//! Extended ablations of fMoE's secondary design choices (`DESIGN.md` §6)
//! — not paper figures, but the knobs the paper's design text motivates:
//!
//! 1. Store replacement at capacity: redundancy-scored dedup (the paper's
//!    §4.4) vs FIFO vs random, measured by the match scores achieved.
//! 2. Prefetch issue ordering: `PRI = p/(l − l_now)` vs FIFO.
//! 3. Matcher placement: asynchronous pub/sub (§4.3) vs synchronous.
//! 4. Prefetch window depth.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin ablation_design_choices
//! ```

use fmoe::map::ExpertMap;
use fmoe::matcher::Matcher;
use fmoe::store::{ExpertMapStore, ReplacementPolicy};
use fmoe::FmoeConfig;
use fmoe_bench::harness::{CellConfig, System};
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::gate::TokenSpan;
use fmoe_model::{presets, GateParams, GateSimulator};
use fmoe_serving::AggregateMetrics;
use fmoe_workload::{split, DatasetSpec};

/// Runs a Mixtral fMoE cell with a customized config.
fn run_with(configure: impl Fn(FmoeConfig) -> FmoeConfig) -> AggregateMetrics {
    let model = presets::mixtral_8x7b();
    let cell = {
        let mut c = CellConfig::new(model.clone(), DatasetSpec::lmsys_chat(), System::Fmoe);
        c.test_requests = 8;
        c.max_decode = 16;
        c
    };
    let gate = cell.gate();
    let (history, test) = cell.split();
    let config = configure(FmoeConfig::for_model(&model));
    let mut predictor = fmoe::FmoePredictor::new(model, config);
    let hist: Vec<fmoe::predictor::HistoryRequest> = history
        .iter()
        .map(|p| fmoe::predictor::HistoryRequest {
            routing: p.routing,
            prompt_tokens: p.prompt_tokens,
            iterations: p.iterations().min(cell.max_history_iterations),
        })
        .collect();
    predictor.populate_from_history(&gate, &hist, cell.max_history_iterations);
    let mut engine = cell.engine(gate);
    for p in history.iter().take(cell.warmup_requests) {
        let _ = engine.serve_request(*p, &mut predictor);
    }
    let metrics: Vec<_> = test
        .iter()
        .take(cell.test_requests)
        .map(|p| engine.serve_request(*p, &mut predictor))
        .collect();
    AggregateMetrics::from_requests(&metrics)
}

fn replacement_ablation() {
    // Overfill a small store from a broad population, then measure the
    // semantic match quality fresh queries achieve.
    let model = presets::small_test_model();
    let gate = GateSimulator::new(model.clone(), GateParams::for_model(&model));
    let prompts = DatasetSpec::lmsys_chat().prompts(600);
    let (history, test) = split::paper_split(&prompts);

    let mut table = Table::new(
        "Ablation: store replacement policy (mean semantic match score, C=64)",
        &["policy", "mean score", "replacements"],
    );
    for (name, policy) in [
        ("redundancy (paper)", ReplacementPolicy::Redundancy),
        ("FIFO", ReplacementPolicy::Fifo),
        ("random", ReplacementPolicy::Random),
    ] {
        let mut store = ExpertMapStore::new(
            64,
            model.num_layers as usize,
            model.experts_per_layer as usize,
            3,
        )
        .with_replacement(policy);
        for p in history.iter().take(300) {
            for iter in 0..p.iterations().min(3) {
                let span = if iter == 0 {
                    TokenSpan::prefill(p.prompt_tokens)
                } else {
                    TokenSpan::single(p.prompt_tokens + iter - 1)
                };
                let rows: Vec<Vec<f64>> = (0..model.num_layers)
                    .map(|l| gate.iteration_distribution(p.routing, iter, l, span))
                    .collect();
                store.insert(
                    gate.semantic_embedding(p.routing, iter),
                    ExpertMap::new(rows),
                );
            }
        }
        let mut sum = 0.0;
        let mut n = 0.0;
        for p in test.iter().take(40) {
            for iter in 0..p.iterations().min(3) {
                if let Some(m) =
                    Matcher::semantic_match(&store, &gate.semantic_embedding(p.routing, iter))
                {
                    sum += m.score;
                    n += 1.0;
                }
            }
        }
        table.row(vec![
            name.into(),
            format!("{:.3}", sum / n),
            store.stats().replaced.to_string(),
        ]);
    }
    table.print();
    let _ = write_csv(&table, "ablation_store_replacement");
    println!("expected: redundancy-scored dedup preserves diversity, so fresh");
    println!("queries find better matches than FIFO/random replacement.\n");
}

fn ordering_and_placement_ablation() {
    let mut table = Table::new(
        "Ablation: prefetch ordering and matcher placement (Mixtral-8x7B)",
        &["variant", "TTFT (ms)", "TPOT (ms)", "hit rate"],
    );
    type Configure = Box<dyn Fn(FmoeConfig) -> FmoeConfig>;
    let cells: Vec<(&str, Configure)> = vec![
        ("fMoE (full)", Box::new(|c: FmoeConfig| c)),
        (
            "FIFO prefetch order",
            Box::new(|mut c: FmoeConfig| {
                c.use_priority_ordering = false;
                c
            }),
        ),
        (
            "synchronous matcher",
            Box::new(|mut c: FmoeConfig| {
                c.synchronous_matcher = true;
                c
            }),
        ),
        (
            "window = 1",
            Box::new(|mut c: FmoeConfig| {
                c.prefetch_window = 1;
                c
            }),
        ),
        (
            "window = 8",
            Box::new(|mut c: FmoeConfig| {
                c.prefetch_window = 8;
                c
            }),
        ),
    ];
    for (name, configure) in cells {
        let a = run_with(configure);
        table.row(vec![
            name.into(),
            format!("{:.0}", a.mean_ttft_ms),
            format!("{:.0}", a.mean_tpot_ms),
            format!("{:.1}%", a.hit_rate * 100.0),
        ]);
    }
    table.print();
    let _ = write_csv(&table, "ablation_ordering_placement");
    println!("expected: FIFO ordering delays near-layer experts (lower hit rate);");
    println!("a synchronous matcher pushes its latency onto every layer boundary");
    println!("(worse TTFT/TPOT even when the extra stall raises the hit rate);");
    println!("window=1 starves the links; depth 4-8 is the sweet region.");
}

fn main() {
    replacement_ablation();
    ordering_and_placement_ablation();
}
