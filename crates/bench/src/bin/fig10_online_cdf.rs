//! Figure 10: CDF of end-to-end request latency in online serving.
//!
//! Setup per §6.3: fMoE's Expert Map Store (and MoE-Infinity's matrix
//! collection) start *empty*; 64 requests sampled from an Azure-style
//! inference trace drive LMSYS-like prompts through a FCFS engine; the
//! reported latency includes queueing.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin fig10_online_cdf [--quick] [--jobs N]
//! ```
//!
//! `--jobs N` fans the independent (model, system) cells across worker
//! threads; output bytes are identical to a sequential run.

use fmoe_bench::harness::{CellConfig, ParallelRunner, System};
use fmoe_bench::plot::{LinePlot, Series};
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::presets;
use fmoe_serving::online::{serve, ServeOptions};
use fmoe_stats::EmpiricalCdf;
use fmoe_workload::{AzureTraceSpec, DatasetSpec};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let runner = ParallelRunner::from_args();
    let num_requests = if quick { 24 } else { 64 };

    let mut table = Table::new(
        "Figure 10: online request latency percentiles (ms, includes queueing)",
        &["model", "system", "p25", "p50", "p75", "p90", "p99"],
    );
    let mut cdf_points = Table::new(
        "Figure 10 raw CDF points",
        &["model", "system", "latency_ms", "fraction"],
    );

    // Fan out the independent (model, system) cells; each produces its
    // latency sample, and all formatting happens afterwards in the
    // original loop order.
    let mut points = Vec::new();
    for model in presets::evaluation_models() {
        for system in System::paper_lineup() {
            points.push((model.clone(), system));
        }
    }
    let samples = runner.run(&points, |_, (model, system)| {
        // Online: no history population — predictors learn on the fly.
        let mut cell = CellConfig::new(model.clone(), DatasetSpec::lmsys_chat(), *system);
        cell.max_decode = if quick { 16 } else { 24 };
        cell.warmup_requests = 0;
        let gate = cell.gate();
        let mut predictor = cell.predictor(&gate, &[]);
        let mut engine = cell.engine(gate);

        let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::lmsys_chat());
        spec.num_requests = num_requests;
        let trace = spec.generate();
        let results = serve(
            &mut engine,
            &trace,
            predictor.as_mut(),
            &ServeOptions::fcfs(),
        )
        .expect("fcfs serving is infallible")
        .results;

        results
            .iter()
            .map(|r| r.request_latency_ns() as f64 / 1e6)
            .collect::<Vec<f64>>()
    });

    let mut cells = points.iter().zip(samples);
    for model in presets::evaluation_models() {
        let mut plot = LinePlot::new(
            &format!("Fig. 10 — online request-latency CDF ({})", model.name),
            "request latency (s)",
            "fraction of requests",
        );
        for system in System::paper_lineup() {
            let ((p_model, p_system), latencies) =
                cells.next().expect("one sample per (model, system) cell");
            assert_eq!(
                (p_model.name.as_str(), *p_system),
                (model.name.as_str(), system)
            );
            let cdf = EmpiricalCdf::new(latencies);
            table.row(vec![
                model.name.clone(),
                system.name().into(),
                format!("{:.0}", cdf.quantile(0.25).unwrap_or(0.0)),
                format!("{:.0}", cdf.quantile(0.50).unwrap_or(0.0)),
                format!("{:.0}", cdf.quantile(0.75).unwrap_or(0.0)),
                format!("{:.0}", cdf.quantile(0.90).unwrap_or(0.0)),
                format!("{:.0}", cdf.quantile(0.99).unwrap_or(0.0)),
            ]);
            let mut series_points = Vec::new();
            for (v, f) in cdf.points(32) {
                cdf_points.row(vec![
                    model.name.clone(),
                    system.name().into(),
                    format!("{v:.1}"),
                    format!("{f:.4}"),
                ]);
                series_points.push((v / 1000.0, f));
            }
            plot.series(Series::new(system.name(), series_points));
        }
        let _ = plot.write_svg(&format!(
            "fig10_{}",
            model.name.to_ascii_lowercase().replace(['.', ' '], "_")
        ));
    }
    table.print();
    let _ = write_csv(&table, "fig10_online_percentiles");
    let _ = write_csv(&cdf_points, "fig10_online_cdf");
    println!("expected shape (paper Fig. 10): fMoE's CDF sits left of every");
    println!("baseline — lower latency at every percentile, even from a cold");
    println!("(empty-store) start.");
}
