//! Figure 12: ablation study of fMoE's design.
//!
//! * 12a — expert pattern-tracking approaches, by prediction coverage at
//!   an equal prefetch budget: Speculate (Mixtral-Offloading/ProMoE style),
//!   Hit count (MoE-Infinity's request-level EAM), Map (T) trajectory-only,
//!   Map (T+S) + semantic search, Map (T+S+δ) full fMoE with the dynamic
//!   threshold (δ may select more experts when unsure — that is the point).
//! * 12b — caching policies under the full engine: LRU vs LFU vs fMoE's
//!   joint probability×frequency priority, end-to-end hit rate.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin fig12_ablation
//! ```

use fmoe::predictor::HistoryRequest;
use fmoe::{FmoeConfig, FmoePredictor};
use fmoe_baselines::moe_infinity::EamHistoryRequest;
use fmoe_baselines::{MixtralOffloadingPredictor, MoeInfinityPredictor};
use fmoe_bench::harness::{coverage_probe, CellConfig, System};
use fmoe_bench::report::{write_csv, Table};
use fmoe_cache::{EvictionPolicy, FmoePriorityPolicy, LfuPolicy, LruPolicy};
use fmoe_model::{presets, GateParams, GateSimulator, ModelConfig};
use fmoe_serving::ExpertPredictor;
use fmoe_workload::{split, DatasetSpec, Prompt};

const DISTANCE: u32 = 3;

fn fmoe_variant(
    model: &ModelConfig,
    gate: &GateSimulator,
    history: &[Prompt],
    semantic: bool,
    dynamic: bool,
) -> FmoePredictor {
    let mut config = FmoeConfig::for_model(model).with_distance(DISTANCE);
    config.prefetch_window = 1;
    config.use_semantic_search = semantic;
    config.use_dynamic_threshold = dynamic;
    let mut p = FmoePredictor::new(model.clone(), config);
    let hist: Vec<HistoryRequest> = history
        .iter()
        .map(|pr| HistoryRequest {
            routing: pr.routing,
            prompt_tokens: pr.prompt_tokens,
            iterations: pr.iterations().min(6),
        })
        .collect();
    p.populate_from_history(gate, &hist, 6);
    p
}

fn tracking_ablation() {
    let mut table = Table::new(
        "Figure 12a: expert pattern tracking approaches (prediction coverage / mean experts planned per layer)",
        &["model", "Speculate", "Hit count", "Map (T)", "Map (T+S)", "Map (T+S+d)"],
    );
    for model in presets::evaluation_models() {
        let gate = GateSimulator::new(model.clone(), GateParams::for_model(&model));
        let prompts = DatasetSpec::lmsys_chat().prompts(100);
        let (history, test) = split::paper_split(&prompts);
        let test: Vec<Prompt> = test.into_iter().take(10).collect();

        let run = |p: &mut dyn ExpertPredictor| {
            let s = coverage_probe(&gate, p, &test, 10);
            format!(
                "{:.1}% / {:.1}",
                s.coverage * 100.0,
                s.mean_planned_per_layer
            )
        };

        let mut speculate = MixtralOffloadingPredictor::new(&model).with_distance(DISTANCE);
        let mut hit_count = MoeInfinityPredictor::new(&model)
            .with_distance(DISTANCE)
            .with_window(1);
        let hist: Vec<EamHistoryRequest> = history
            .iter()
            .map(|pr| EamHistoryRequest {
                routing: pr.routing,
                prompt_tokens: pr.prompt_tokens,
                iterations: pr.iterations().min(6),
            })
            .collect();
        hit_count.populate_from_history(&gate, &hist, 6);
        let mut map_t = fmoe_variant(&model, &gate, &history, false, false);
        let mut map_ts = fmoe_variant(&model, &gate, &history, true, false);
        let mut map_tsd = fmoe_variant(&model, &gate, &history, true, true);

        table.row(vec![
            model.name.clone(),
            run(&mut speculate),
            run(&mut hit_count),
            run(&mut map_t),
            run(&mut map_ts),
            run(&mut map_tsd),
        ]);
    }
    table.print();
    let _ = write_csv(&table, "fig12a_tracking");
    println!("expected shape (paper Fig. 12a): coverage increases as features");
    println!("restore — hit count worst, speculation effective (residual");
    println!("connections), Map (T) < Map (T+S) < Map (T+S+d).\n");
}

fn caching_ablation() {
    let mut table = Table::new(
        "Figure 12b: caching policies under fMoE prefetching (end-to-end hit rate)",
        &[
            "model",
            "LRU",
            "LFU (MoE-Inf)",
            "LFU (per-access)",
            "fMoE priority",
        ],
    );
    for model in presets::evaluation_models() {
        let mut row = vec![model.name.clone()];
        let neutral = 1.0 / f64::from(model.experts_per_layer);
        type PolicyFactory = Box<dyn Fn() -> Box<dyn EvictionPolicy>>;
        let policies: Vec<(&str, PolicyFactory)> = vec![
            (
                "LRU",
                Box::new(|| Box::new(LruPolicy::new()) as Box<dyn EvictionPolicy>),
            ),
            (
                "LFU (MoE-Inf)",
                Box::new(|| Box::new(LfuPolicy::coarse()) as Box<dyn EvictionPolicy>),
            ),
            (
                "LFU",
                Box::new(|| Box::new(LfuPolicy::new()) as Box<dyn EvictionPolicy>),
            ),
            (
                "fMoE",
                Box::new(move || {
                    Box::new(FmoePriorityPolicy::new().with_neutral_probability(neutral))
                        as Box<dyn EvictionPolicy>
                }),
            ),
        ];
        for (_, make_policy) in policies {
            let mut cell = CellConfig::new(model.clone(), DatasetSpec::lmsys_chat(), System::Fmoe);
            cell.test_requests = 8;
            cell.max_decode = 16;
            // Tighter budget than the default so eviction decisions matter.
            cell.cache_budget_bytes = (model.total_expert_bytes() as f64 * 0.25) as u64;
            let gate = cell.gate();
            let (history, test) = cell.split();
            let mut predictor = cell.predictor(&gate, &history);
            let mut engine = fmoe_serving::ServingEngine::new(
                gate,
                fmoe_model::GpuSpec::rtx_3090(),
                cell.topology.clone(),
                make_policy(),
                fmoe_serving::EngineConfig {
                    cache_budget_bytes: cell.cache_budget_bytes,
                    preload_all: false,
                    max_decode_iterations: Some(cell.max_decode),
                    context_collection_ns: 1_200_000,
                    framework_overhead_per_layer_ns: 3_000_000,
                    ..fmoe_serving::EngineConfig::paper_default()
                },
            );
            for p in history.iter().take(cell.warmup_requests) {
                let _ = engine.serve_request(*p, predictor.as_mut());
            }
            let mut requests = Vec::new();
            for p in test.iter().take(cell.test_requests) {
                requests.push(engine.serve_request(*p, predictor.as_mut()));
            }
            let agg = fmoe_serving::AggregateMetrics::from_requests(&requests);
            row.push(format!("{:.1}%", agg.hit_rate * 100.0));
        }
        table.row(row);
    }
    table.print();
    let _ = write_csv(&table, "fig12b_caching");
    println!("expected shape (paper Fig. 12b): LRU worst (layer-sequential");
    println!("usage defeats recency), LFU better, fMoE's p*freq priority best.");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tracking_only = args.iter().any(|a| a == "--tracking");
    let caching_only = args.iter().any(|a| a == "--caching");
    if !caching_only {
        tracking_ablation();
    }
    if !tracking_only {
        caching_ablation();
    }
}
