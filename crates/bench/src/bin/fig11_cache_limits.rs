//! Figure 11: TPOT under varying expert-cache limits (6 → 96 GB),
//! the latency–memory trade-off head-on — plus the eviction-policy
//! miss-ratio companion table (`fig11_policy_miss`): LRU/LFU/SIEVE/FIFO
//! replayed over one seeded Zipf expert trace at several cache sizes.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin fig11_cache_limits [--quick] [--jobs N]
//! ```
//!
//! `--jobs N` fans the independent (model, system, budget) cells across
//! worker threads; output bytes are identical to a sequential run.

use fmoe_bench::harness::{CellConfig, ParallelRunner, System};
use fmoe_bench::plot::{LinePlot, Series};
use fmoe_bench::policy_sweep::{replay_miss_ratio, zipf_expert_trace};
use fmoe_bench::report::{write_csv, Table};
use fmoe_cache::PolicyKind;
use fmoe_model::presets;
use fmoe_workload::DatasetSpec;

const BUDGETS_GB: [u64; 6] = [6, 12, 24, 48, 72, 96];

/// Cache sizes for the policy comparison, in expert slots (the small
/// test model has 64 experts, so this spans 12.5% → 75% residency).
const POLICY_SLOTS: [u64; 4] = [8, 16, 32, 48];

const POLICIES: [PolicyKind; 4] = [
    PolicyKind::Lru,
    PolicyKind::Lfu,
    PolicyKind::Sieve,
    PolicyKind::Fifo,
];

/// The eviction-policy miss-ratio table over one shared Zipf trace.
fn policy_miss_table(runner: &ParallelRunner, quick: bool) {
    let model = presets::small_test_model();
    let accesses = if quick { 6_000 } else { 24_000 };
    let trace = zipf_expert_trace(&model, accesses, 1.0, 0xf30e);
    let mut table = Table::new(
        "Figure 11 companion: miss ratio by eviction policy (Zipf s=1.0)",
        &["slots", "LRU", "LFU", "SIEVE", "FIFO"],
    );
    let mut sweep = Vec::new();
    for &slots in &POLICY_SLOTS {
        for kind in POLICIES {
            sweep.push((slots, kind));
        }
    }
    let ratios = runner.run(&sweep, |_, (slots, kind)| {
        replay_miss_ratio(&model, *slots, *kind, &trace)
    });
    let mut results = sweep.iter().zip(ratios);
    for &slots in &POLICY_SLOTS {
        let mut row = vec![slots.to_string()];
        for kind in POLICIES {
            let ((p_slots, p_kind), ratio) = results.next().expect("one ratio per cell");
            assert_eq!((*p_slots, *p_kind), (slots, kind));
            row.push(format!("{ratio:.4}"));
        }
        table.row(row);
    }
    table.print();
    let _ = write_csv(&table, "fig11_policy_miss");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let runner = ParallelRunner::from_args();
    let mut table = Table::new(
        "Figure 11: TPOT (ms) under varying expert cache limits",
        &[
            "model", "system", "6GB", "12GB", "24GB", "48GB", "72GB", "96GB",
        ],
    );

    // Flatten the 3-deep sweep into independent points, run them on the
    // worker pool, then rebuild rows and plots in the original order.
    let mut sweep = Vec::new();
    for model in presets::evaluation_models() {
        for system in System::paper_lineup() {
            for &gb in &BUDGETS_GB {
                sweep.push((model.clone(), system, gb));
            }
        }
    }
    let tpots = runner.run(&sweep, |_, (model, system, gb)| {
        let mut cell = CellConfig::new(model.clone(), DatasetSpec::lmsys_chat(), *system);
        cell.cache_budget_bytes = gb << 30;
        cell.test_requests = if quick { 5 } else { 10 };
        cell.max_decode = if quick { 12 } else { 20 };
        cell.run_offline().aggregate.mean_tpot_ms
    });
    let mut results = sweep.iter().zip(tpots);

    for model in presets::evaluation_models() {
        let mut plot = LinePlot::new(
            &format!("Fig. 11 — TPOT vs expert cache limit ({})", model.name),
            "expert cache budget (GB)",
            "TPOT (ms)",
        );
        for system in System::paper_lineup() {
            let mut row = vec![model.name.clone(), system.name().into()];
            let mut points = Vec::new();
            for &gb in &BUDGETS_GB {
                let ((p_model, p_system, p_gb), tpot) =
                    results.next().expect("one result per sweep point");
                assert_eq!(
                    (p_model.name.as_str(), *p_system, *p_gb),
                    (model.name.as_str(), system, gb)
                );
                row.push(format!("{tpot:.0}"));
                points.push((gb as f64, tpot));
            }
            plot.series(Series::new(system.name(), points));
            table.row(row);
        }
        let _ = plot.write_svg(&format!(
            "fig11_{}",
            model.name.to_ascii_lowercase().replace(['.', ' '], "_")
        ));
    }
    table.print();
    let _ = write_csv(&table, "fig11_cache_limits");
    policy_miss_table(&runner, quick);
    println!("expected shape (paper Fig. 11): every system improves with more");
    println!("cache; fMoE stays lowest across the sweep, with the largest gaps");
    println!("at small budgets; curves converge as the budget approaches the");
    println!("model's full expert set (Qwen fits entirely from ~24 GB up).");
    println!("policy table: SIEVE should track LRU closely and beat FIFO on");
    println!("the skewed trace, at one visited-bit flip per hit instead of a");
    println!("list move — the lock-friendliness the sharded cache exploits.");
}
