//! Figure 11: TPOT under varying expert-cache limits (6 → 96 GB),
//! the latency–memory trade-off head-on.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin fig11_cache_limits [--quick]
//! ```

use fmoe_bench::harness::{CellConfig, System};
use fmoe_bench::plot::{LinePlot, Series};
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::presets;
use fmoe_workload::DatasetSpec;

const BUDGETS_GB: [u64; 6] = [6, 12, 24, 48, 72, 96];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut table = Table::new(
        "Figure 11: TPOT (ms) under varying expert cache limits",
        &[
            "model", "system", "6GB", "12GB", "24GB", "48GB", "72GB", "96GB",
        ],
    );
    for model in presets::evaluation_models() {
        let mut plot = LinePlot::new(
            &format!("Fig. 11 — TPOT vs expert cache limit ({})", model.name),
            "expert cache budget (GB)",
            "TPOT (ms)",
        );
        for system in System::paper_lineup() {
            let mut row = vec![model.name.clone(), system.name().into()];
            let mut points = Vec::new();
            for &gb in &BUDGETS_GB {
                let mut cell = CellConfig::new(model.clone(), DatasetSpec::lmsys_chat(), system);
                cell.cache_budget_bytes = gb << 30;
                cell.test_requests = if quick { 5 } else { 10 };
                cell.max_decode = if quick { 12 } else { 20 };
                let out = cell.run_offline();
                row.push(format!("{:.0}", out.aggregate.mean_tpot_ms));
                points.push((gb as f64, out.aggregate.mean_tpot_ms));
            }
            plot.series(Series::new(system.name(), points));
            table.row(row);
        }
        let _ = plot.write_svg(&format!(
            "fig11_{}",
            model.name.to_ascii_lowercase().replace(['.', ' '], "_")
        ));
    }
    table.print();
    let _ = write_csv(&table, "fig11_cache_limits");
    println!("expected shape (paper Fig. 11): every system improves with more");
    println!("cache; fMoE stays lowest across the sweep, with the largest gaps");
    println!("at small budgets; curves converge as the budget approaches the");
    println!("model's full expert set (Qwen fits entirely from ~24 GB up).");
}
