//! Figure 11: TPOT under varying expert-cache limits (6 → 96 GB),
//! the latency–memory trade-off head-on.
//!
//! ```sh
//! cargo run --release -p fmoe-bench --bin fig11_cache_limits [--quick] [--jobs N]
//! ```
//!
//! `--jobs N` fans the independent (model, system, budget) cells across
//! worker threads; output bytes are identical to a sequential run.

use fmoe_bench::harness::{CellConfig, ParallelRunner, System};
use fmoe_bench::plot::{LinePlot, Series};
use fmoe_bench::report::{write_csv, Table};
use fmoe_model::presets;
use fmoe_workload::DatasetSpec;

const BUDGETS_GB: [u64; 6] = [6, 12, 24, 48, 72, 96];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let runner = ParallelRunner::from_args();
    let mut table = Table::new(
        "Figure 11: TPOT (ms) under varying expert cache limits",
        &[
            "model", "system", "6GB", "12GB", "24GB", "48GB", "72GB", "96GB",
        ],
    );

    // Flatten the 3-deep sweep into independent points, run them on the
    // worker pool, then rebuild rows and plots in the original order.
    let mut sweep = Vec::new();
    for model in presets::evaluation_models() {
        for system in System::paper_lineup() {
            for &gb in &BUDGETS_GB {
                sweep.push((model.clone(), system, gb));
            }
        }
    }
    let tpots = runner.run(&sweep, |_, (model, system, gb)| {
        let mut cell = CellConfig::new(model.clone(), DatasetSpec::lmsys_chat(), *system);
        cell.cache_budget_bytes = gb << 30;
        cell.test_requests = if quick { 5 } else { 10 };
        cell.max_decode = if quick { 12 } else { 20 };
        cell.run_offline().aggregate.mean_tpot_ms
    });
    let mut results = sweep.iter().zip(tpots);

    for model in presets::evaluation_models() {
        let mut plot = LinePlot::new(
            &format!("Fig. 11 — TPOT vs expert cache limit ({})", model.name),
            "expert cache budget (GB)",
            "TPOT (ms)",
        );
        for system in System::paper_lineup() {
            let mut row = vec![model.name.clone(), system.name().into()];
            let mut points = Vec::new();
            for &gb in &BUDGETS_GB {
                let ((p_model, p_system, p_gb), tpot) =
                    results.next().expect("one result per sweep point");
                assert_eq!(
                    (p_model.name.as_str(), *p_system, *p_gb),
                    (model.name.as_str(), system, gb)
                );
                row.push(format!("{tpot:.0}"));
                points.push((gb as f64, tpot));
            }
            plot.series(Series::new(system.name(), points));
            table.row(row);
        }
        let _ = plot.write_svg(&format!(
            "fig11_{}",
            model.name.to_ascii_lowercase().replace(['.', ' '], "_")
        ));
    }
    table.print();
    let _ = write_csv(&table, "fig11_cache_limits");
    println!("expected shape (paper Fig. 11): every system improves with more");
    println!("cache; fMoE stays lowest across the sweep, with the largest gaps");
    println!("at small budgets; curves converge as the budget approaches the");
    println!("model's full expert set (Qwen fits entirely from ~24 GB up).");
}
