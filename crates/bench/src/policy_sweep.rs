//! Eviction-policy miss-ratio sweeps over seeded Zipf expert traces.
//!
//! The fig11 binary compares eviction policies (LRU, LFU, SIEVE, FIFO)
//! on the same skewed expert-access stream at several cache sizes. The
//! stream is a Zipf(s) draw over the model's experts from a splitmix64
//! generator — fully seeded (FM003: no ambient entropy), so every run
//! replays the same accesses and the resulting miss ratios are exact,
//! reproducible numbers rather than sampled estimates.

use fmoe_cache::{ExpertCache, PolicyKind};
use fmoe_model::{ExpertId, ModelConfig};

/// Splitmix64; seeded, tiny, deterministic.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A seeded Zipf(s)-distributed expert-access trace over all of
/// `model`'s experts. Rank → expert is scrambled by a seeded
/// Fisher–Yates pass so popularity does not correlate with layer order
/// (which would make round-robin placement accidentally adversarial).
#[must_use]
pub fn zipf_expert_trace(
    model: &ModelConfig,
    accesses: usize,
    skew: f64,
    seed: u64,
) -> Vec<ExpertId> {
    let n = (model.num_layers * model.experts_per_layer) as usize;
    let mut rng = SplitMix64(seed);

    // Rank permutation: rank r (popular → rare) maps to experts[perm[r]].
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }

    // Zipf CDF over ranks 1..=n with exponent `skew`.
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for r in 1..=n {
        acc += 1.0 / (r as f64).powf(skew);
        cdf.push(acc);
    }
    let total = acc;

    (0..accesses)
        .map(|_| {
            let u = rng.next_f64() * total;
            let rank = cdf.partition_point(|&c| c < u).min(n - 1);
            ExpertId::from_dense_index(perm[rank], model.experts_per_layer)
        })
        .collect()
}

/// Replays `trace` against a fresh single-GPU cache holding `slots`
/// experts under `kind`, faulting every miss in (access → miss →
/// insert), and returns the miss ratio in `[0, 1]`.
#[must_use]
pub fn replay_miss_ratio(
    model: &ModelConfig,
    slots: u64,
    kind: PolicyKind,
    trace: &[ExpertId],
) -> f64 {
    let mut cache = ExpertCache::new(model, model.expert_bytes() * slots, 1, kind.build());
    let mut now = 0u64;
    for &e in trace {
        now += 1;
        if !cache.record_access(e, now) {
            let _ = cache.insert(e, now);
        }
    }
    let stats = cache.stats();
    debug_assert!(stats.check_invariants());
    if stats.lookups == 0 {
        0.0
    } else {
        stats.misses as f64 / stats.lookups as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmoe_model::presets;

    #[test]
    fn zipf_trace_is_seed_deterministic_and_skewed() {
        let model = presets::small_test_model();
        let a = zipf_expert_trace(&model, 4_000, 1.0, 7);
        let b = zipf_expert_trace(&model, 4_000, 1.0, 7);
        assert_eq!(a, b, "same seed, same trace");
        let c = zipf_expert_trace(&model, 4_000, 1.0, 8);
        assert_ne!(a, c, "different seed, different trace");
        // Skew: the most popular expert dominates a uniform share.
        let mut counts = std::collections::BTreeMap::new();
        for e in &a {
            *counts.entry(*e).or_insert(0u64) += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        let uniform = a.len() as u64 / 64;
        assert!(
            max > uniform * 4,
            "Zipf head should dominate: {max} vs {uniform}"
        );
    }

    #[test]
    fn replay_yields_sane_monotone_miss_ratios() {
        let model = presets::small_test_model();
        let trace = zipf_expert_trace(&model, 6_000, 1.0, 42);
        for kind in [PolicyKind::Lru, PolicyKind::Sieve, PolicyKind::Fifo] {
            let small = replay_miss_ratio(&model, 8, kind, &trace);
            let large = replay_miss_ratio(&model, 32, kind, &trace);
            assert!((0.0..=1.0).contains(&small));
            assert!(
                large <= small,
                "{kind:?}: more slots cannot miss more ({large} > {small})"
            );
        }
    }
}
