//! Minimal dependency-free SVG line plots.
//!
//! The experiment binaries print tables and CSVs; this module turns their
//! series into `results/*.svg` line charts so the paper's figures can be
//! *looked at*, not just diffed. Deliberately small: linear axes, one
//! polyline per series, legend, tick labels — enough to eyeball a
//! crossover.

use std::fmt::Write as _;
use std::path::PathBuf;

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points (need not be sorted; they are drawn in order).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    #[must_use]
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }
}

/// A line chart.
#[derive(Debug, Clone)]
pub struct LinePlot {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    /// Force the y axis to start at zero (default true — latency and
    /// hit-rate plots mislead otherwise).
    y_from_zero: bool,
}

/// A qualitative palette that survives grayscale printing.
const COLORS: [&str; 8] = [
    "#1b6ca8", "#d1495b", "#66a182", "#edae49", "#775097", "#3d3b30", "#00798c", "#b36a5e",
];

const W: f64 = 640.0;
const H: f64 = 400.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 160.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 48.0;

impl LinePlot {
    /// Creates an empty plot.
    #[must_use]
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
            y_from_zero: true,
        }
    }

    /// Lets the y axis fit the data instead of starting at zero.
    #[must_use]
    pub fn with_free_y(mut self) -> Self {
        self.y_from_zero = false;
        self
    }

    /// Adds a series.
    pub fn series(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if pts.is_empty() {
            return None;
        }
        let (mut x0, mut x1, mut y0, mut y1) = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for (x, y) in pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if self.y_from_zero {
            y0 = y0.min(0.0);
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        Some((x0, x1, y0, y1))
    }

    /// Renders the chart as an SVG document.
    #[must_use]
    pub fn render(&self) -> String {
        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif">"#
        );
        let _ = write!(svg, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
        let _ = write!(
            svg,
            r#"<text x="{}" y="22" font-size="14" text-anchor="middle">{}</text>"#,
            (MARGIN_L + W - MARGIN_R) / 2.0,
            escape(&self.title)
        );

        let Some((x0, x1, y0, y1)) = self.bounds() else {
            let _ = write!(svg, "</svg>");
            return svg;
        };
        let plot_w = W - MARGIN_L - MARGIN_R;
        let plot_h = H - MARGIN_T - MARGIN_B;
        let sx = |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * plot_w;
        let sy = |y: f64| MARGIN_T + plot_h - (y - y0) / (y1 - y0) * plot_h;

        // Axes.
        let _ = write!(
            svg,
            r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#888"/>"##
        );
        // Ticks: 5 per axis.
        for i in 0..=4 {
            let fx = x0 + (x1 - x0) * f64::from(i) / 4.0;
            let fy = y0 + (y1 - y0) * f64::from(i) / 4.0;
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="middle">{}</text>"#,
                sx(fx),
                MARGIN_T + plot_h + 16.0,
                fmt_tick(fx)
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end">{}</text>"#,
                MARGIN_L - 6.0,
                sy(fy) + 3.0,
                fmt_tick(fy)
            );
            let _ = write!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{0:.1}" x2="{1:.1}" y2="{0:.1}" stroke="#eee"/>"##,
                sy(fy),
                MARGIN_L + plot_w
            );
        }
        // Axis labels.
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            H - 10.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="14" y="{:.1}" font-size="11" text-anchor="middle" transform="rotate(-90 14 {:.1})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        );

        // Series polylines + legend.
        for (i, s) in self.series.iter().enumerate() {
            let color = COLORS[i % COLORS.len()];
            let pts: String = s
                .points
                .iter()
                .filter(|(x, y)| x.is_finite() && y.is_finite())
                .map(|&(x, y)| format!("{:.1},{:.1} ", sx(x), sy(y)))
                .collect();
            let _ = write!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                pts.trim_end()
            );
            for &(x, y) in &s.points {
                if x.is_finite() && y.is_finite() {
                    let _ = write!(
                        svg,
                        r#"<circle cx="{:.1}" cy="{:.1}" r="2.6" fill="{color}"/>"#,
                        sx(x),
                        sy(y)
                    );
                }
            }
            let ly = MARGIN_T + 14.0 + i as f64 * 16.0;
            let lx = MARGIN_L + plot_w + 10.0;
            let _ = write!(
                svg,
                r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
                lx + 16.0
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" font-size="10">{}</text>"#,
                lx + 20.0,
                ly + 3.0,
                escape(&s.label)
            );
        }
        let _ = write!(svg, "</svg>");
        svg
    }

    /// Writes the chart to `results/<name>.svg`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write errors.
    pub fn write_svg(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.svg"));
        std::fs::write(&path, self.render())?;
        Ok(path)
    }
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{:.0}k", v / 1000.0)
    } else if v.abs() >= 10.0 || v == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LinePlot {
        let mut p = LinePlot::new("Demo <plot>", "cache (GB)", "TPOT (ms)");
        p.series(Series::new(
            "fMoE",
            vec![(6.0, 235.0), (48.0, 186.0), (96.0, 113.0)],
        ));
        p.series(Series::new(
            "baseline",
            vec![(6.0, 792.0), (48.0, 639.0), (96.0, 113.0)],
        ));
        p
    }

    #[test]
    fn renders_valid_svg_with_all_series() {
        let svg = sample().render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("fMoE"));
        assert!(svg.contains("baseline"));
        // Title is escaped.
        assert!(svg.contains("Demo &lt;plot&gt;"));
        assert!(!svg.contains("Demo <plot>"));
    }

    #[test]
    fn empty_plot_is_still_valid() {
        let p = LinePlot::new("empty", "x", "y");
        let svg = p.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(!svg.contains("polyline"));
    }

    #[test]
    fn points_stay_inside_the_plot_area() {
        let svg = sample().render();
        // Every circle's cx must lie within [MARGIN_L, W - MARGIN_R].
        for part in svg.split("<circle cx=\"").skip(1) {
            let cx: f64 = part.split('"').next().unwrap().parse().unwrap();
            assert!((MARGIN_L..=W - MARGIN_R).contains(&cx), "cx {cx}");
        }
    }

    #[test]
    fn non_finite_points_are_dropped() {
        let mut p = LinePlot::new("nan", "x", "y");
        p.series(Series::new(
            "s",
            vec![(0.0, 1.0), (f64::NAN, 2.0), (2.0, 3.0)],
        ));
        let svg = p.render();
        assert_eq!(svg.matches("<circle").count(), 2);
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn writes_file() {
        let p = sample();
        let path = p.write_svg("unit_test_plot").unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).unwrap();
    }
}
