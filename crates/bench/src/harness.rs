//! Shared experiment harness.

use fmoe::predictor::HistoryRequest;
use fmoe::{FmoeConfig, FmoePredictor};
use fmoe_baselines::moe_infinity::EamHistoryRequest;
use fmoe_baselines::{
    DeepSpeedPredictor, MixtralOffloadingPredictor, MoeInfinityPredictor, OraclePredictor,
    ProMoePredictor, SwapMoePredictor,
};
use fmoe_cache::{EvictionPolicy, FmoePriorityPolicy, LfuPolicy, LruPolicy};
use fmoe_memsim::Topology;
use fmoe_model::gate::TokenSpan;
use fmoe_model::{GateParams, GateSimulator, GpuSpec, ModelConfig};
use fmoe_serving::{
    AggregateMetrics, Breakdown, EngineConfig, ExpertPredictor, IndexMode, IterationContext,
    RequestMetrics, ServingEngine,
};
use fmoe_trace::{MetricsRegistry, TraceRecord, TraceSink};
use fmoe_workload::{split, DatasetSpec, Prompt};

/// The systems compared throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// fMoE (this paper).
    Fmoe,
    /// MoE-Infinity (request-level EAM, LFU, synchronous).
    MoeInfinity,
    /// ProMoE (stride predictor stand-in, LFU, asynchronous).
    ProMoe,
    /// Mixtral-Offloading (distance-1 speculation, LRU, synchronous).
    MixtralOffloading,
    /// DeepSpeed-Inference (expert-agnostic, pure on-demand).
    DeepSpeed,
    /// SwapMoE (slow-adapting critical-expert set; related work).
    SwapMoe,
    /// Oracle upper bound (ground-truth prefetch).
    Oracle,
    /// No offloading: every expert resident.
    NoOffload,
}

impl System {
    /// The paper's Fig. 9 lineup, in plot order.
    #[must_use]
    pub fn paper_lineup() -> [System; 5] {
        [
            System::DeepSpeed,
            System::MixtralOffloading,
            System::ProMoe,
            System::MoeInfinity,
            System::Fmoe,
        ]
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            System::Fmoe => "fMoE",
            System::MoeInfinity => "MoE-Infinity",
            System::ProMoe => "ProMoE",
            System::MixtralOffloading => "Mixtral-Offloading",
            System::DeepSpeed => "DeepSpeed-Inference",
            System::SwapMoe => "SwapMoE",
            System::Oracle => "Oracle",
            System::NoOffload => "No-offload",
        }
    }

    /// The cache policy each system ships with. `experts_per_layer`
    /// parameterizes fMoE's neutral prior (`1/J`).
    #[must_use]
    pub fn cache_policy(self, experts_per_layer: u32) -> Box<dyn EvictionPolicy> {
        match self {
            System::Fmoe => Box::new(
                FmoePriorityPolicy::new()
                    .with_neutral_probability(1.0 / f64::from(experts_per_layer.max(1))),
            ),
            System::MixtralOffloading => Box::new(LruPolicy::new()),
            System::MoeInfinity | System::ProMoe | System::DeepSpeed | System::SwapMoe => {
                Box::new(LfuPolicy::new())
            }
            System::Oracle | System::NoOffload => Box::new(LruPolicy::new()),
        }
    }
}

/// One experiment cell: `(model, dataset, system)` plus knobs.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// Model under test.
    pub model: ModelConfig,
    /// Prompt dataset.
    pub dataset: DatasetSpec,
    /// Offloading system.
    pub system: System,
    /// Total expert-cache budget in bytes.
    pub cache_budget_bytes: u64,
    /// GPU topology (defaults to the paper's six-GPU testbed).
    pub topology: Topology,
    /// Prompts sampled from the dataset before the 70/30 split.
    pub total_prompts: u64,
    /// Decode-length cap per request (experiment speed).
    pub max_decode: u64,
    /// Iterations stored per history request (bounds the offline store).
    pub max_history_iterations: u64,
    /// Test prompts served (after the split; the first `n`).
    pub test_requests: usize,
    /// Unmeasured warm-up requests served first (from the history split),
    /// so reported metrics reflect steady-state serving rather than a
    /// stone-cold cache — the paper's offline runs likewise measure with
    /// warm system state.
    pub warmup_requests: usize,
    /// Batch size for lockstep serving.
    pub batch_size: usize,
    /// Prefetch distance for distance-parameterized systems.
    pub prefetch_distance: u32,
    /// Mixed-precision staging threshold (extension; `None` = lossless).
    pub low_precision_threshold: Option<f64>,
    /// On-demand load deadline (failure model; `None` = block until
    /// done). Deadline misses fall back to half-precision payloads.
    pub on_demand_deadline_ns: Option<u64>,
    /// Router seed (vary for confidence runs).
    pub gate_seed: u64,
    /// Residency-index representation: [`IndexMode::Dense`] for the flat
    /// tables, [`IndexMode::Reference`] for the retained `BTreeMap` path
    /// (differential testing only; results must be byte-identical either
    /// way).
    pub index_mode: IndexMode,
}

impl CellConfig {
    /// Paper-comparable defaults for a `(model, dataset, system)` cell.
    ///
    /// The default budget is 40% of the model's total expert bytes: large
    /// enough that prefetching can win, small enough that offloading
    /// pressure exists for every model (the paper's testbed likewise held
    /// a fraction of each model's experts once dense weights and KV cache
    /// were resident).
    #[must_use]
    pub fn new(model: ModelConfig, dataset: DatasetSpec, system: System) -> Self {
        let budget = (model.total_expert_bytes() as f64 * 0.4) as u64;
        Self {
            model,
            dataset,
            system,
            cache_budget_bytes: budget,
            topology: Topology::paper_testbed(),
            total_prompts: 120,
            max_decode: 24,
            max_history_iterations: 6,
            test_requests: 16,
            warmup_requests: 4,
            batch_size: 1,
            prefetch_distance: 3,
            low_precision_threshold: None,
            on_demand_deadline_ns: None,
            gate_seed: 0xF0E1_D2C3_B4A5_9687,
            index_mode: IndexMode::Dense,
        }
    }

    /// Builds the router for this cell.
    #[must_use]
    pub fn gate(&self) -> GateSimulator {
        let params = GateParams::for_model(&self.model).with_seed(self.gate_seed);
        GateSimulator::new(self.model.clone(), params)
    }

    /// The 70/30 prompt split for this cell.
    #[must_use]
    pub fn split(&self) -> (Vec<Prompt>, Vec<Prompt>) {
        let prompts = self.dataset.prompts(self.total_prompts);
        split::paper_split(&prompts)
    }

    /// Builds the concrete fMoE predictor for this cell, pre-populated
    /// from the history split (exposed so tools can keep the concrete
    /// type, e.g. to persist its store).
    #[must_use]
    pub fn fmoe_predictor(&self, gate: &GateSimulator, history: &[Prompt]) -> FmoePredictor {
        let config = FmoeConfig::for_model(&self.model).with_distance(self.prefetch_distance);
        let mut p = FmoePredictor::new(self.model.clone(), config);
        let hist: Vec<HistoryRequest> = history
            .iter()
            .map(|pr| HistoryRequest {
                routing: pr.routing,
                prompt_tokens: pr.prompt_tokens,
                iterations: pr.iterations().min(self.max_history_iterations),
            })
            .collect();
        p.populate_from_history(gate, &hist, self.max_history_iterations);
        p
    }

    /// Builds the system's predictor, pre-populated with the history
    /// split where the system uses history.
    #[must_use]
    pub fn predictor(&self, gate: &GateSimulator, history: &[Prompt]) -> Box<dyn ExpertPredictor> {
        match self.system {
            System::Fmoe => Box::new(self.fmoe_predictor(gate, history)),
            System::MoeInfinity => {
                let mut p =
                    MoeInfinityPredictor::new(&self.model).with_distance(self.prefetch_distance);
                let hist: Vec<EamHistoryRequest> = history
                    .iter()
                    .map(|pr| EamHistoryRequest {
                        routing: pr.routing,
                        prompt_tokens: pr.prompt_tokens,
                        iterations: pr.iterations().min(self.max_history_iterations),
                    })
                    .collect();
                p.populate_from_history(gate, &hist, self.max_history_iterations);
                Box::new(p)
            }
            System::ProMoe => {
                Box::new(ProMoePredictor::new(&self.model).with_distance(self.prefetch_distance))
            }
            System::MixtralOffloading => {
                // Native distance 1 regardless of the cell's d (its design).
                Box::new(MixtralOffloadingPredictor::new(&self.model))
            }
            System::DeepSpeed => Box::new(DeepSpeedPredictor::new()),
            System::SwapMoe => Box::new(SwapMoePredictor::new(&self.model)),
            System::Oracle => Box::new(OraclePredictor::new(gate.clone(), self.prefetch_distance)),
            System::NoOffload => Box::new(DeepSpeedPredictor::new()),
        }
    }

    /// Builds the engine for this cell.
    #[must_use]
    pub fn engine(&self, gate: GateSimulator) -> ServingEngine {
        let preload = self.system == System::NoOffload;
        let budget = if preload {
            // No-offload needs everything resident (plus slack for
            // integer division across GPUs).
            self.model.total_expert_bytes()
                + self.model.expert_bytes() * u64::from(self.topology.num_gpus)
        } else {
            self.cache_budget_bytes
        };
        let config = EngineConfig {
            cache_budget_bytes: budget,
            preload_all: preload,
            max_decode_iterations: Some(self.max_decode),
            context_collection_ns: 1_200_000,
            framework_overhead_per_layer_ns: 3_000_000,
            low_precision_threshold: self.low_precision_threshold,
            on_demand_deadline_ns: self.on_demand_deadline_ns,
            index_mode: self.index_mode,
            ..EngineConfig::paper_default()
        };
        ServingEngine::builder(gate, GpuSpec::rtx_3090(), self.topology.clone())
            .policy(self.system.cache_policy(self.model.experts_per_layer))
            .config(config)
            .build()
    }

    /// Runs the standard offline experiment: populate from the 70%
    /// history split, serve the test split, aggregate.
    #[must_use]
    pub fn run_offline(&self) -> SystemOutcome {
        self.run_offline_with(TraceSink::disabled()).outcome
    }

    /// [`Self::run_offline`] with a recording trace sink installed:
    /// same schedule and metrics (tracing is observation-only — locked
    /// by the workspace determinism suite), plus the captured trace
    /// records and metrics snapshot for export.
    #[must_use]
    pub fn run_offline_traced(&self, capacity: usize) -> TracedOutcome {
        self.run_offline_with(TraceSink::recording(capacity))
    }

    fn run_offline_with(&self, sink: TraceSink) -> TracedOutcome {
        let gate = self.gate();
        let (history, test) = self.split();
        let mut predictor = self.predictor(&gate, &history);
        let mut engine = self.engine(gate);
        engine.set_trace_sink(sink.clone());
        // Warm-up phase: serve a few history prompts unmeasured.
        for prompt in history.iter().take(self.warmup_requests) {
            let _ = engine.serve_request(*prompt, predictor.as_mut());
        }
        let _ = engine.take_breakdown();
        let mut requests: Vec<RequestMetrics> = Vec::new();
        let test: Vec<Prompt> = test.into_iter().take(self.test_requests).collect();
        for batch in test.chunks(self.batch_size.max(1)) {
            requests.extend(engine.serve_batch(batch, predictor.as_mut()));
        }
        TracedOutcome {
            outcome: SystemOutcome {
                system: self.system,
                aggregate: AggregateMetrics::from_requests(&requests),
                requests,
                breakdown: engine.take_breakdown(),
                cache_stats: engine.cache_stats(),
                transfer_stats: engine.transfer_stats(),
            },
            records: sink.take_records(),
            metrics: sink.metrics_snapshot(),
            dropped_records: sink.dropped_records(),
        }
    }
}

/// An offline cell run plus its captured trace.
#[derive(Debug)]
pub struct TracedOutcome {
    /// The usual offline outcome (identical to [`CellConfig::run_offline`]).
    pub outcome: SystemOutcome,
    /// Every trace record the run emitted (oldest first).
    pub records: Vec<TraceRecord>,
    /// Counters, gauges, and histograms the run accumulated.
    pub metrics: MetricsRegistry,
    /// Records lost to ring overflow (0 unless `capacity` was too small).
    pub dropped_records: u64,
}

/// Everything one offline cell run produces.
#[derive(Debug)]
pub struct SystemOutcome {
    /// The system that ran.
    pub system: System,
    /// Aggregated serving metrics.
    pub aggregate: AggregateMetrics,
    /// Per-request metrics.
    pub requests: Vec<RequestMetrics>,
    /// Per-operation latency breakdown.
    pub breakdown: Breakdown,
    /// Cache statistics.
    pub cache_stats: fmoe_cache::CacheStats,
    /// Transfer statistics.
    pub transfer_stats: fmoe_memsim::TransferStats,
}

/// Prediction-coverage probe: replays requests through a predictor
/// (without the hardware simulation) and measures the fraction of truly
/// activated experts covered by the plans issued for their layer, plus
/// the mean number of experts planned per layer.
///
/// This isolates *prediction quality* from cache/bandwidth effects — used
/// for Fig. 4, Fig. 8 and Fig. 12a, where the paper compares pattern-
/// tracking approaches.
#[must_use]
pub fn coverage_probe(
    gate: &GateSimulator,
    predictor: &mut dyn ExpertPredictor,
    test: &[Prompt],
    max_iterations: u64,
) -> CoverageStats {
    let layers = gate.config().num_layers;
    let mut covered = 0u64;
    let mut total = 0u64;
    let mut planned_count = 0u64;
    let mut planned_layers = 0u64;
    for prompt in test {
        let iters = prompt.iterations().min(max_iterations).max(1);
        for iteration in 0..iters {
            let span = if iteration == 0 {
                TokenSpan::prefill(prompt.prompt_tokens)
            } else {
                TokenSpan::single(prompt.prompt_tokens + iteration - 1)
            };
            let ctx = IterationContext {
                element: 0,
                request_id: prompt.id,
                iteration,
                is_prefill: iteration == 0,
                span,
                embedding: gate.semantic_embedding(prompt.routing, iteration),
                routing: prompt.routing,
            };
            let mut planned: Vec<Vec<u32>> = vec![Vec::new(); layers as usize];
            for plan in predictor.begin_iteration(&ctx) {
                if !plan.advisory {
                    planned[plan.expert.layer as usize].push(plan.expert.slot);
                }
            }
            let mut realized: Vec<Vec<f64>> = Vec::with_capacity(layers as usize);
            for layer in 0..layers {
                let dist = gate.iteration_distribution(prompt.routing, iteration, layer, span);
                for plan in predictor.observe_gate(&ctx, layer, &dist) {
                    if !plan.advisory {
                        planned[plan.expert.layer as usize].push(plan.expert.slot);
                    }
                }
                realized.push(dist);
            }
            for layer in 0..layers {
                let activated = gate.activated_slots(prompt.routing, iteration, layer, span);
                total += activated.len() as u64;
                covered += activated
                    .iter()
                    .filter(|s| planned[layer as usize].contains(s))
                    .count() as u64;
                planned_count += planned[layer as usize].len() as u64;
                planned_layers += 1;
            }
            predictor.end_iteration(&ctx, &realized);
        }
    }
    CoverageStats {
        coverage: covered as f64 / total.max(1) as f64,
        mean_planned_per_layer: planned_count as f64 / planned_layers.max(1) as f64,
    }
}

/// Output of [`coverage_probe`].
#[derive(Debug, Clone, Copy)]
pub struct CoverageStats {
    /// Fraction of activated experts covered by that layer's plans.
    pub coverage: f64,
    /// Mean experts planned per layer (memory/bandwidth proxy).
    pub mean_planned_per_layer: f64,
}

/// Deterministic fan-out of independent sweep points across scoped
/// worker threads.
///
/// The determinism contract (DESIGN.md §12):
///
/// * **Per-point isolation** — every sweep point builds its own seeded
///   RNG, gate, and engine inside its closure (as [`CellConfig`] runs
///   do), so points share no mutable state and compute the same values
///   on any schedule.
/// * **Index-ordered collection** — workers claim indices from an atomic
///   counter and return `(index, result)` pairs; results are reassembled
///   into input order before anyone observes them. CSV output is
///   therefore **byte-identical** across `--jobs` settings, locked by
///   the cross-mode test in `crates/bench/tests/csv_determinism.rs`.
///
/// The runner itself touches no wall clock and no randomness, so it
/// stays inside fmoe-lint's FM002/FM003 envelope even though it lives in
/// the bench crate's library.
///
/// **Worker clamping.** Requested workers beyond the machine's available
/// parallelism only add contention: sweep points are CPU-bound, so extra
/// threads time-slice the same cores and the scheduling overhead makes
/// the "parallel" run *slower* than sequential (a `--jobs 4` run on a
/// one-core container measured ~0.88x). [`Self::new`] therefore clamps
/// to [`Self::available_parallelism`]; with one effective worker the
/// runner degenerates to the plain sequential loop. Results are
/// byte-identical either way, so the clamp only changes wall time.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRunner {
    jobs: usize,
}

impl ParallelRunner {
    /// A runner with a fixed worker count, clamped to
    /// `1..=available_parallelism` (see the type docs for why
    /// oversubscription is never useful for these workloads).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1).min(Self::available_parallelism()),
        }
    }

    /// A runner that fans out to exactly `jobs` workers even past the
    /// machine's core count. Only for tests and measurement harnesses
    /// that must exercise the threaded path regardless of hardware;
    /// experiment binaries should use [`Self::new`].
    #[must_use]
    pub fn unclamped(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// The machine's available parallelism (at least 1).
    #[must_use]
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// A runner configured from the process arguments: `--jobs N` or
    /// `--jobs=N`, defaulting to the machine's available parallelism.
    #[must_use]
    pub fn from_args() -> Self {
        Self::new(jobs_from_args(std::env::args().skip(1)))
    }

    /// The worker count this runner fans out to (post-clamp for runners
    /// built with [`Self::new`]).
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over `items`, in parallel across up to [`Self::jobs`]
    /// workers, returning results in **input order**. `f` receives each
    /// item's index alongside the item. With one worker (or one item)
    /// this degenerates to a plain sequential loop.
    ///
    /// # Panics
    ///
    /// A panic inside `f` is propagated to the caller after the scope
    /// joins (no result is silently dropped).
    pub fn run<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        if self.jobs == 1 || items.len() <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let workers = self.jobs.min(items.len());
        let mut slots: Vec<Option<T>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            local.push((i, f(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                let local = handle
                    .join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
                for (i, value) in local {
                    slots[i] = Some(value);
                }
            }
        });
        let out: Vec<T> = slots.into_iter().flatten().collect();
        assert_eq!(
            out.len(),
            items.len(),
            "every sweep point must produce exactly one result"
        );
        out
    }
}

/// Parses a `--jobs N` / `--jobs=N` flag out of an argument stream;
/// defaults to [`std::thread::available_parallelism`] when absent or
/// malformed.
#[must_use]
pub fn jobs_from_args<It: Iterator<Item = String>>(args: It) -> usize {
    let default = ParallelRunner::available_parallelism;
    let mut expect_value = false;
    for arg in args {
        if expect_value {
            return arg
                .parse()
                .map(|n: usize| n.max(1))
                .unwrap_or_else(|_| default());
        }
        if arg == "--jobs" {
            expect_value = true;
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            return v
                .parse()
                .map(|n: usize| n.max(1))
                .unwrap_or_else(|_| default());
        }
    }
    default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmoe_model::presets;

    fn tiny_cell(system: System) -> CellConfig {
        let mut cell = CellConfig::new(
            presets::small_test_model(),
            DatasetSpec::tiny_test(),
            system,
        );
        cell.total_prompts = 30;
        cell.test_requests = 3;
        cell.warmup_requests = 1;
        cell.max_decode = 6;
        cell.max_history_iterations = 3;
        // Small model: scale the budget to its tiny experts.
        cell.cache_budget_bytes = cell.model.expert_bytes() * 24;
        cell
    }

    #[test]
    fn every_system_runs_offline_and_reports() {
        for system in System::paper_lineup().into_iter().chain([
            System::SwapMoe,
            System::Oracle,
            System::NoOffload,
        ]) {
            let out = tiny_cell(system).run_offline();
            assert_eq!(out.system, system);
            assert_eq!(out.aggregate.requests, 3, "{}", system.name());
            assert!(out.aggregate.mean_ttft_ms > 0.0, "{}", system.name());
            assert!(out.breakdown.iterations > 0, "{}", system.name());
            if system == System::NoOffload {
                assert!(
                    (out.aggregate.hit_rate - 1.0).abs() < 1e-9,
                    "No-offload must never miss"
                );
            }
        }
    }

    #[test]
    fn predictor_names_match_system_names() {
        for system in System::paper_lineup().into_iter().chain([System::SwapMoe]) {
            let cell = tiny_cell(system);
            let gate = cell.gate();
            let (history, _) = cell.split();
            let predictor = cell.predictor(&gate, &history);
            match system {
                // DeepSpeed's engine behaviour is configured via the
                // predictor trait; NoOffload reuses it.
                System::NoOffload => {}
                _ => assert_eq!(predictor.name(), system.name()),
            }
        }
    }

    #[test]
    fn split_is_deterministic_per_cell() {
        let cell = tiny_cell(System::Fmoe);
        let (h1, t1) = cell.split();
        let (h2, t2) = cell.split();
        assert_eq!(h1, h2);
        assert_eq!(t1, t2);
        assert!(!h1.is_empty() && !t1.is_empty());
    }

    #[test]
    fn run_offline_is_reproducible() {
        let a = tiny_cell(System::Fmoe).run_offline();
        let b = tiny_cell(System::Fmoe).run_offline();
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn coverage_probe_bounds() {
        let cell = tiny_cell(System::Fmoe);
        let gate = cell.gate();
        let (history, test) = cell.split();
        let mut p = cell.predictor(&gate, &history);
        let stats = coverage_probe(&gate, p.as_mut(), &test, 4);
        assert!((0.0..=1.0).contains(&stats.coverage));
        assert!(stats.mean_planned_per_layer >= 0.0);
        assert!(stats.mean_planned_per_layer <= f64::from(cell.model.experts_per_layer));
    }

    #[test]
    fn parallel_runner_preserves_input_order() {
        // `unclamped` keeps the threaded path exercised even on a
        // single-core runner, where `new` would fall back to sequential.
        let items: Vec<u64> = (0..97).collect();
        let sequential = ParallelRunner::new(1).run(&items, |i, &x| (i, x * x));
        for jobs in [2, 3, 8, 128] {
            let parallel = ParallelRunner::unclamped(jobs).run(&items, |i, &x| (i, x * x));
            assert_eq!(parallel, sequential, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_runner_clamps_to_available_parallelism() {
        let avail = ParallelRunner::available_parallelism();
        assert!(avail >= 1);
        assert_eq!(ParallelRunner::new(usize::MAX).jobs(), avail);
        assert_eq!(ParallelRunner::new(0).jobs(), 1);
        assert_eq!(ParallelRunner::unclamped(avail + 7).jobs(), avail + 7);
    }

    #[test]
    fn parallel_runner_handles_empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(ParallelRunner::new(4).run(&none, |_, &x| x).is_empty());
        assert_eq!(
            ParallelRunner::new(4).run(&[7u32], |i, &x| x + i as u32),
            vec![7]
        );
    }

    #[test]
    fn parallel_runner_matches_sequential_on_sweep_cells() {
        // The real use: full benchmark cells computed in parallel must be
        // indistinguishable from the sequential run.
        let cells: Vec<CellConfig> = System::paper_lineup().into_iter().map(tiny_cell).collect();
        let seq = ParallelRunner::new(1).run(&cells, |_, cell| cell.run_offline());
        let par = ParallelRunner::unclamped(4).run(&cells, |_, cell| cell.run_offline());
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.system, b.system);
            assert_eq!(a.requests, b.requests);
        }
    }

    #[test]
    #[should_panic(expected = "sweep point 3 exploded")]
    fn parallel_runner_propagates_worker_panics() {
        let items: Vec<u32> = (0..8).collect();
        ParallelRunner::unclamped(4).run(&items, |i, _| {
            assert!(i != 3, "sweep point 3 exploded");
            i
        });
    }

    #[test]
    fn jobs_flag_parsing() {
        let parse = |args: &[&str]| jobs_from_args(args.iter().map(|s| (*s).to_string()));
        assert_eq!(parse(&["--jobs", "3"]), 3);
        assert_eq!(parse(&["--quick", "--jobs=6", "--trace"]), 6);
        // Zero clamps to one; malformed values fall back to the default,
        // which is at least one.
        assert_eq!(parse(&["--jobs", "0"]), 1);
        assert!(parse(&["--jobs", "many"]) >= 1);
        assert!(parse(&["--quick"]) >= 1);
    }
}
