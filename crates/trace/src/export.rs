//! Export formats for recorded traces.
//!
//! Three consumers, three formats:
//!
//! * [`chrome_trace_json`] — the Chrome Trace Event JSON format, loadable
//!   in `chrome://tracing` / Perfetto. Timestamps are microseconds; we
//!   format them from integer nanoseconds with pure `u64` arithmetic
//!   (`"{µs}.{ns%1000:03}"`) so no float ever touches a virtual time.
//! * [`events_text`] — the canonical one-line-per-record text format the
//!   golden-trace suite diffs. Stable by contract: changing it means
//!   re-blessing `tests/golden/`.
//! * [`phase_totals`] — per-phase duration totals for bench CSV
//!   breakdowns, pairing `Begin`/`End` records and summing `Span`s.

use crate::event::{
    Nanos, Phase, TraceEvent, TraceRecord, NO_GPU, NO_LAYER, NO_REQUEST, NO_SLOT, NO_VALUE,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Chrome-trace track (tid) for a record: request-scoped events share
/// the request's track, GPU-link transfers get a per-link track offset
/// far above any request id, and engine-scoped events live on track 0.
const GPU_TRACK_BASE: u64 = 1_000_000;

fn track(request: u64, gpu: u32) -> u64 {
    if request != NO_REQUEST {
        request + 1
    } else if gpu != NO_GPU {
        GPU_TRACK_BASE + u64::from(gpu)
    } else {
        0
    }
}

/// Format integer nanoseconds as fractional microseconds without floats.
fn ts_us(ns: Nanos) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn push_common(out: &mut String, name: &str, cat: &str, ph: &str, ts_ns: Nanos, tid: u64) {
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":0,\"tid\":{tid}",
        ts_us(ts_ns)
    );
}

fn push_arg_u64(args: &mut Vec<String>, key: &str, value: u64, sentinel: u64) {
    if value != sentinel {
        args.push(format!("\"{key}\":{value}"));
    }
}

fn push_args(out: &mut String, args: &[String]) {
    if !args.is_empty() {
        let _ = write!(out, ",\"args\":{{{}}}", args.join(","));
    }
}

/// Render records as a complete Chrome Trace Event JSON document.
///
/// Identical record slices render to identical bytes; the output always
/// validates under [`crate::json::validate`] (a proptest in this crate
/// locks that for arbitrary sequences).
#[must_use]
pub fn chrome_trace_json(records: &[TraceRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for rec in records {
        if !first {
            out.push(',');
        }
        first = false;
        match rec.event {
            TraceEvent::Begin {
                phase,
                request,
                layer,
            } => {
                push_common(
                    &mut out,
                    phase.name(),
                    "phase",
                    "B",
                    rec.at_ns,
                    track(request, NO_GPU),
                );
                let mut args = Vec::new();
                push_arg_u64(&mut args, "layer", u64::from(layer), u64::from(NO_LAYER));
                push_args(&mut out, &args);
                out.push('}');
            }
            TraceEvent::End {
                phase,
                request,
                layer,
            } => {
                push_common(
                    &mut out,
                    phase.name(),
                    "phase",
                    "E",
                    rec.at_ns,
                    track(request, NO_GPU),
                );
                let mut args = Vec::new();
                push_arg_u64(&mut args, "layer", u64::from(layer), u64::from(NO_LAYER));
                push_args(&mut out, &args);
                out.push('}');
            }
            TraceEvent::Span {
                phase,
                request,
                layer,
                gpu,
                dur_ns,
                bytes,
            } => {
                let start = rec.at_ns.saturating_sub(dur_ns);
                push_common(
                    &mut out,
                    phase.name(),
                    "phase",
                    "X",
                    start,
                    track(request, gpu),
                );
                let _ = write!(out, ",\"dur\":{}", ts_us(dur_ns));
                let mut args = Vec::new();
                push_arg_u64(&mut args, "layer", u64::from(layer), u64::from(NO_LAYER));
                push_arg_u64(&mut args, "gpu", u64::from(gpu), u64::from(NO_GPU));
                if bytes > 0 {
                    args.push(format!("\"bytes\":{bytes}"));
                }
                push_args(&mut out, &args);
                out.push('}');
            }
            TraceEvent::Instant {
                marker,
                request,
                layer,
                slot,
                gpu,
                value,
            } => {
                push_common(
                    &mut out,
                    marker.name(),
                    "marker",
                    "i",
                    rec.at_ns,
                    track(request, gpu),
                );
                out.push_str(",\"s\":\"t\"");
                let mut args = Vec::new();
                push_arg_u64(&mut args, "layer", u64::from(layer), u64::from(NO_LAYER));
                push_arg_u64(&mut args, "slot", u64::from(slot), u64::from(NO_SLOT));
                push_arg_u64(&mut args, "gpu", u64::from(gpu), u64::from(NO_GPU));
                push_arg_u64(&mut args, "value", value, NO_VALUE);
                push_args(&mut out, &args);
                out.push('}');
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"fmoe-trace\"}}");
    out
}

fn fmt_req(request: u64) -> String {
    if request == NO_REQUEST {
        "-".to_string()
    } else {
        request.to_string()
    }
}

fn fmt_u32(value: u32, sentinel: u32) -> String {
    if value == sentinel {
        "-".to_string()
    } else {
        value.to_string()
    }
}

fn fmt_value(value: u64) -> String {
    if value == NO_VALUE {
        "-".to_string()
    } else {
        value.to_string()
    }
}

/// Render records in the canonical golden-trace text format: one line
/// per record, `-` for sentinel ids. This format is the unit of diff for
/// `tests/golden_traces.rs`; treat its shape as frozen.
#[must_use]
pub fn events_text(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        let at = rec.at_ns;
        match rec.event {
            TraceEvent::Begin {
                phase,
                request,
                layer,
            } => {
                let _ = writeln!(
                    out,
                    "{at} B {} req={} layer={}",
                    phase.name(),
                    fmt_req(request),
                    fmt_u32(layer, NO_LAYER)
                );
            }
            TraceEvent::End {
                phase,
                request,
                layer,
            } => {
                let _ = writeln!(
                    out,
                    "{at} E {} req={} layer={}",
                    phase.name(),
                    fmt_req(request),
                    fmt_u32(layer, NO_LAYER)
                );
            }
            TraceEvent::Span {
                phase,
                request,
                layer,
                gpu,
                dur_ns,
                bytes,
            } => {
                let _ = writeln!(
                    out,
                    "{at} X {} req={} layer={} gpu={} dur={dur_ns} bytes={bytes}",
                    phase.name(),
                    fmt_req(request),
                    fmt_u32(layer, NO_LAYER),
                    fmt_u32(gpu, NO_GPU)
                );
            }
            TraceEvent::Instant {
                marker,
                request,
                layer,
                slot,
                gpu,
                value,
            } => {
                let _ = writeln!(
                    out,
                    "{at} I {} req={} layer={} slot={} gpu={} value={}",
                    marker.name(),
                    fmt_req(request),
                    fmt_u32(layer, NO_LAYER),
                    fmt_u32(slot, NO_SLOT),
                    fmt_u32(gpu, NO_GPU),
                    fmt_value(value)
                );
            }
        }
    }
    out
}

/// Sum total virtual time per phase: `Begin`/`End` pairs are matched
/// (most-recent-open-first, same identity) and `Span` records contribute
/// their duration directly. Unmatched opens contribute nothing.
#[must_use]
pub fn phase_totals(records: &[TraceRecord]) -> BTreeMap<&'static str, Nanos> {
    let mut totals: BTreeMap<&'static str, Nanos> = BTreeMap::new();
    let mut open: Vec<(Phase, u64, u32, Nanos)> = Vec::new();
    for rec in records {
        match rec.event {
            TraceEvent::Begin {
                phase,
                request,
                layer,
            } => open.push((phase, request, layer, rec.at_ns)),
            TraceEvent::End {
                phase,
                request,
                layer,
            } => {
                if let Some(idx) = open
                    .iter()
                    .rposition(|&(p, r, l, _)| p == phase && r == request && l == layer)
                {
                    let (_, _, _, started) = open.remove(idx);
                    *totals.entry(phase.name()).or_insert(0) += rec.at_ns.saturating_sub(started);
                }
            }
            TraceEvent::Span { phase, dur_ns, .. } => {
                *totals.entry(phase.name()).or_insert(0) += dur_ns;
            }
            TraceEvent::Instant { .. } => {}
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Marker;
    use crate::json;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                at_ns: 1_000,
                event: TraceEvent::Begin {
                    phase: Phase::Gate,
                    request: 3,
                    layer: 0,
                },
            },
            TraceRecord {
                at_ns: 2_500,
                event: TraceEvent::End {
                    phase: Phase::Gate,
                    request: 3,
                    layer: 0,
                },
            },
            TraceRecord {
                at_ns: 4_000,
                event: TraceEvent::Span {
                    phase: Phase::Transfer,
                    request: NO_REQUEST,
                    layer: 1,
                    gpu: 0,
                    dur_ns: 1_500,
                    bytes: 4_096,
                },
            },
            TraceRecord {
                at_ns: 4_000,
                event: TraceEvent::Instant {
                    marker: Marker::CacheEvict,
                    request: NO_REQUEST,
                    layer: NO_LAYER,
                    slot: 7,
                    gpu: 1,
                    value: NO_VALUE,
                },
            },
        ]
    }

    #[test]
    fn chrome_export_is_valid_json_and_stable() {
        let out = chrome_trace_json(&sample());
        json::validate(&out).expect("chrome export must be valid JSON");
        assert_eq!(out, chrome_trace_json(&sample()), "export is pure");
        assert!(out.contains("\"ph\":\"B\""));
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"dur\":1.500"));
        assert!(out.contains("\"tid\":1000000"), "gpu 0 track");
        assert!(out.contains("\"tid\":4"), "request 3 → track 4");
    }

    #[test]
    fn empty_trace_is_still_valid_json() {
        let out = chrome_trace_json(&[]);
        json::validate(&out).expect("empty export must be valid JSON");
    }

    #[test]
    fn events_text_renders_sentinels_as_dashes() {
        let text = events_text(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "1000 B gate req=3 layer=0");
        assert_eq!(lines[1], "2500 E gate req=3 layer=0");
        assert_eq!(
            lines[2],
            "4000 X transfer req=- layer=1 gpu=0 dur=1500 bytes=4096"
        );
        assert_eq!(
            lines[3],
            "4000 I cache_evict req=- layer=- slot=7 gpu=1 value=-"
        );
    }

    #[test]
    fn phase_totals_pair_begin_end_and_sum_spans() {
        let totals = phase_totals(&sample());
        assert_eq!(totals.get("gate"), Some(&1_500));
        assert_eq!(totals.get("transfer"), Some(&1_500));
        assert_eq!(totals.get("compute"), None);
    }

    #[test]
    fn timestamp_formatting_is_integer_math() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(999), "0.999");
        assert_eq!(ts_us(1_000), "1.000");
        assert_eq!(ts_us(1_234_567), "1234.567");
        assert_eq!(ts_us(u64::MAX), format!("{}.615", u64::MAX / 1_000));
    }
}
