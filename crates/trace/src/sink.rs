//! [`TraceSink`] — the handle the simulation threads through itself.
//!
//! A sink is either *disabled* (the default: a `None`, so every emission
//! is one branch and an immediate return — no allocation, no clock
//! reads, no observable effect on the run) or *recording*, in which case
//! it shares one [`RingRecorder`] + [`MetricsRegistry`] behind an
//! `Arc<Mutex<..>>`. Cloning a recording sink clones the handle, not
//! the buffer, so the serving engine can hand the same sink to its
//! transfer engine and expert cache and all three interleave into one
//! causally-ordered timeline.
//!
//! The handle is `Send + Sync` so structures that *contain* a sink (the
//! expert cache, and through it the sharded concurrent cache) can be
//! shared across threads. The simulation path itself stays
//! single-threaded by design (DESIGN.md §10 — determinism forbids
//! cross-thread interleaving in the sim path); the disabled-path cost is
//! still a pointer-sized `Option` check, and the enabled path pays one
//! uncontended lock per emission.

use crate::event::{Marker, Nanos, Phase, TraceRecord};
use crate::metrics::MetricsRegistry;
use crate::recorder::RingRecorder;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

#[derive(Debug)]
struct SinkState {
    recorder: RingRecorder,
    metrics: MetricsRegistry,
}

fn lock(state: &Mutex<SinkState>) -> MutexGuard<'_, SinkState> {
    // A panic while holding the lock poisons it; tracing is
    // observation-only, so recover the inner state rather than
    // propagating the poison.
    state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Cheaply clonable tracing handle. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<Mutex<SinkState>>>,
}

impl TraceSink {
    /// A sink that records nothing. Every emission is a no-op; this is
    /// the zero-cost default every component starts with.
    #[must_use]
    pub fn disabled() -> Self {
        TraceSink { inner: None }
    }

    /// A sink recording into a fresh ring buffer of `capacity` records.
    #[must_use]
    pub fn recording(capacity: usize) -> Self {
        TraceSink {
            inner: Some(Arc::new(Mutex::new(SinkState {
                recorder: RingRecorder::with_capacity(capacity),
                metrics: MetricsRegistry::new(),
            }))),
        }
    }

    /// Whether emissions are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a phase span at virtual time `at_ns`.
    pub fn begin(&self, at_ns: Nanos, phase: Phase, request: u64, layer: u32) {
        if let Some(state) = &self.inner {
            lock(state).recorder.begin(at_ns, phase, request, layer);
        }
    }

    /// Close a phase span at virtual time `at_ns`.
    pub fn end(&self, at_ns: Nanos, phase: Phase, request: u64, layer: u32) {
        if let Some(state) = &self.inner {
            lock(state).recorder.end(at_ns, phase, request, layer);
        }
    }

    /// Record a complete interval retroactively at its end time.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        end_ns: Nanos,
        phase: Phase,
        request: u64,
        layer: u32,
        gpu: u32,
        dur_ns: Nanos,
        bytes: u64,
    ) {
        if let Some(state) = &self.inner {
            lock(state)
                .recorder
                .span(end_ns, phase, request, layer, gpu, dur_ns, bytes);
        }
    }

    /// Record a point event.
    #[allow(clippy::too_many_arguments)]
    pub fn instant(
        &self,
        at_ns: Nanos,
        marker: Marker,
        request: u64,
        layer: u32,
        slot: u32,
        gpu: u32,
        value: u64,
    ) {
        if let Some(state) = &self.inner {
            lock(state)
                .recorder
                .instant(at_ns, marker, request, layer, slot, gpu, value);
        }
    }

    /// Add `delta` to the named counter.
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(state) = &self.inner {
            lock(state).metrics.add(name, delta);
        }
    }

    /// Set the named gauge to `value`.
    pub fn set_gauge(&self, name: &str, value: u64) {
        if let Some(state) = &self.inner {
            lock(state).metrics.set_gauge(name, value);
        }
    }

    /// Observe `value` into the named fixed-bucket histogram.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(state) = &self.inner {
            lock(state).metrics.observe(name, value);
        }
    }

    /// Drain every buffered record (closing still-open spans). Returns
    /// an empty vec on a disabled sink.
    #[must_use]
    pub fn take_records(&self) -> Vec<TraceRecord> {
        match &self.inner {
            Some(state) => lock(state).recorder.take(),
            None => Vec::new(),
        }
    }

    /// Snapshot the metrics registry. Empty on a disabled sink.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        match &self.inner {
            Some(state) => lock(state).metrics.clone(),
            None => MetricsRegistry::new(),
        }
    }

    /// Records evicted by ring overflow so far. Zero on a disabled sink.
    #[must_use]
    pub fn dropped_records(&self) -> u64 {
        match &self.inner {
            Some(state) => lock(state).recorder.dropped(),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{NO_GPU, NO_LAYER, NO_REQUEST, NO_VALUE};

    #[test]
    fn disabled_sink_records_and_counts_nothing() {
        let sink = TraceSink::disabled();
        sink.begin(10, Phase::Gate, 1, 0);
        sink.end(20, Phase::Gate, 1, 0);
        sink.count("x", 3);
        sink.observe("h", 42);
        assert!(!sink.is_enabled());
        assert!(sink.take_records().is_empty());
        assert!(sink.metrics_snapshot().is_empty());
        assert_eq!(sink.dropped_records(), 0);
    }

    #[test]
    fn clones_share_one_recorder() {
        let sink = TraceSink::recording(16);
        let clone = sink.clone();
        sink.instant(
            5,
            Marker::CacheInsert,
            NO_REQUEST,
            NO_LAYER,
            3,
            NO_GPU,
            NO_VALUE,
        );
        clone.instant(
            7,
            Marker::CacheEvict,
            NO_REQUEST,
            NO_LAYER,
            4,
            NO_GPU,
            NO_VALUE,
        );
        let recs = sink.take_records();
        assert_eq!(recs.len(), 2, "clone writes land in the shared buffer");
        assert!(
            clone.take_records().is_empty(),
            "take drains for all handles"
        );
    }

    #[test]
    fn sink_handles_are_send_and_sync() {
        // The sharded concurrent expert cache embeds sinks in structures
        // shared across threads; losing these bounds is a compile break
        // there, but pin it here at the source.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceSink>();
    }

    #[test]
    fn metrics_flow_through_the_sink() {
        let sink = TraceSink::recording(4);
        sink.count("engine.iterations", 2);
        sink.count("engine.iterations", 1);
        sink.set_gauge("cache.resident_bytes", 77);
        sink.observe("latency_ns", 1_500);
        let snap = sink.metrics_snapshot();
        assert_eq!(snap.counter("engine.iterations"), 3);
        assert_eq!(snap.gauge("cache.resident_bytes"), Some(77));
        assert_eq!(snap.histogram("latency_ns").map(|h| h.count()), Some(1));
    }
}
