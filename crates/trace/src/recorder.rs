//! The preallocated ring-buffer recorder.
//!
//! Three invariants, all locked by proptests in this crate:
//!
//! 1. **Monotone time** — each stored record's timestamp is clamped to be
//!    `>=` the previous record's. Producers emit in causal order already;
//!    the clamp turns any violation into a visible flat spot instead of a
//!    time-travelling trace that Chrome renders as garbage.
//! 2. **Balanced spans** — `end` without a matching `begin` records
//!    nothing, and [`RingRecorder::take`] closes any still-open span at
//!    the final timestamp, so a drained trace always has begin/end
//!    parity.
//! 3. **Bounded memory** — the buffer never grows past its capacity; on
//!    overflow the *oldest* record is dropped and counted. The tail of a
//!    trace (where the interesting failure usually is) survives.

use crate::event::{Nanos, Phase, TraceEvent, TraceRecord};
use std::collections::VecDeque;

/// Fixed-capacity event recorder with monotone virtual timestamps.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    last_ns: Nanos,
    dropped: u64,
    /// Open `Begin` spans awaiting their `End`, newest last.
    open: Vec<(Phase, u64, u32, Nanos)>,
}

impl RingRecorder {
    /// Create a recorder holding at most `capacity` records. The buffer
    /// is allocated once, here; recording never allocates. A capacity of
    /// zero drops (and counts) every record.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        RingRecorder {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            last_ns: 0,
            dropped: 0,
            open: Vec::new(),
        }
    }

    /// Number of records currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total records evicted to make room since construction. Never
    /// reset — a nonzero value means the trace is a suffix of the run.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Timestamp of the most recently recorded event.
    #[must_use]
    pub fn last_ns(&self) -> Nanos {
        self.last_ns
    }

    fn push(&mut self, at_ns: Nanos, event: TraceEvent) {
        let at_ns = at_ns.max(self.last_ns);
        self.last_ns = at_ns;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TraceRecord { at_ns, event });
    }

    /// Open a phase span.
    pub fn begin(&mut self, at_ns: Nanos, phase: Phase, request: u64, layer: u32) {
        self.push(
            at_ns,
            TraceEvent::Begin {
                phase,
                request,
                layer,
            },
        );
        self.open.push((phase, request, layer, self.last_ns));
    }

    /// Close the most recent open span with this identity. A close with
    /// no matching open records nothing, keeping the trace balanced by
    /// construction.
    pub fn end(&mut self, at_ns: Nanos, phase: Phase, request: u64, layer: u32) {
        let Some(idx) = self
            .open
            .iter()
            .rposition(|&(p, r, l, _)| p == phase && r == request && l == layer)
        else {
            return;
        };
        self.open.remove(idx);
        self.push(
            at_ns,
            TraceEvent::End {
                phase,
                request,
                layer,
            },
        );
    }

    /// Record a complete interval retroactively at its end time.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        end_ns: Nanos,
        phase: Phase,
        request: u64,
        layer: u32,
        gpu: u32,
        dur_ns: Nanos,
        bytes: u64,
    ) {
        self.push(
            end_ns,
            TraceEvent::Span {
                phase,
                request,
                layer,
                gpu,
                dur_ns,
                bytes,
            },
        );
    }

    /// Record a point event.
    #[allow(clippy::too_many_arguments)]
    pub fn instant(
        &mut self,
        at_ns: Nanos,
        marker: crate::event::Marker,
        request: u64,
        layer: u32,
        slot: u32,
        gpu: u32,
        value: u64,
    ) {
        self.push(
            at_ns,
            TraceEvent::Instant {
                marker,
                request,
                layer,
                slot,
                gpu,
                value,
            },
        );
    }

    /// Drain every buffered record in recording order. Spans still open
    /// are closed first, at the final timestamp, newest-first (proper
    /// nesting). The drop counter is preserved across `take`.
    pub fn take(&mut self) -> Vec<TraceRecord> {
        while let Some((phase, request, layer, _)) = self.open.pop() {
            self.push(
                self.last_ns,
                TraceEvent::End {
                    phase,
                    request,
                    layer,
                },
            );
        }
        self.buf.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Marker, NO_GPU, NO_LAYER, NO_REQUEST, NO_SLOT};

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut r = RingRecorder::with_capacity(3);
        for i in 0..5u64 {
            r.instant(
                i * 10,
                Marker::CacheInsert,
                NO_REQUEST,
                NO_LAYER,
                NO_SLOT,
                NO_GPU,
                i,
            );
        }
        assert_eq!(r.dropped(), 2);
        let recs = r.take();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].at_ns, 20, "oldest two records were evicted");
        assert_eq!(recs[2].at_ns, 40);
    }

    #[test]
    fn timestamps_clamp_monotone() {
        let mut r = RingRecorder::with_capacity(8);
        r.instant(100, Marker::Shed, 1, NO_LAYER, NO_SLOT, NO_GPU, 0);
        r.instant(40, Marker::Shed, 2, NO_LAYER, NO_SLOT, NO_GPU, 0);
        let recs = r.take();
        assert_eq!(recs[0].at_ns, 100);
        assert_eq!(recs[1].at_ns, 100, "out-of-order timestamp clamps forward");
    }

    #[test]
    fn unmatched_end_is_a_no_op() {
        let mut r = RingRecorder::with_capacity(8);
        r.end(10, Phase::Gate, 1, 0);
        assert!(r.is_empty());
    }

    #[test]
    fn take_closes_open_spans_nested() {
        let mut r = RingRecorder::with_capacity(8);
        r.begin(10, Phase::Iteration, NO_REQUEST, NO_LAYER);
        r.begin(20, Phase::Gate, NO_REQUEST, 0);
        let recs = r.take();
        assert_eq!(recs.len(), 4);
        // Inner span closes before the outer one.
        assert!(matches!(
            recs[2].event,
            TraceEvent::End {
                phase: Phase::Gate,
                ..
            }
        ));
        assert!(matches!(
            recs[3].event,
            TraceEvent::End {
                phase: Phase::Iteration,
                ..
            }
        ));
        assert_eq!(recs[2].at_ns, 20);
        assert_eq!(recs[3].at_ns, 20);
    }

    #[test]
    fn zero_capacity_counts_everything_as_dropped() {
        let mut r = RingRecorder::with_capacity(0);
        r.begin(5, Phase::Gate, 1, 0);
        r.end(9, Phase::Gate, 1, 0);
        assert_eq!(r.dropped(), 2);
        assert!(r.take().is_empty());
    }
}
