#![cfg(test)]
//! Property tests for the recorder and exporter invariants the rest of
//! the workspace leans on: balanced spans, monotone virtual time, exact
//! oldest-first overflow accounting, and always-valid Chrome JSON.

use crate::event::{Marker, Phase, TraceEvent, NO_GPU, NO_LAYER, NO_REQUEST, NO_SLOT};
use crate::export::chrome_trace_json;
use crate::json;
use crate::recorder::RingRecorder;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Begin(u64, u64, u32),
    End(u64, u64, u32),
    Span(u64, u64, u32, u64),
    Instant(u64, u64, u32, u64),
}

const PHASES: [Phase; 9] = [
    Phase::Queue,
    Phase::ContextCollect,
    Phase::Gate,
    Phase::PrefetchIssue,
    Phase::Transfer,
    Phase::OnDemandWait,
    Phase::Compute,
    Phase::All2All,
    Phase::Iteration,
];

const MARKERS: [Marker; 6] = [
    Marker::PrefetchIssued,
    Marker::PrefetchArrived,
    Marker::OnDemandLoad,
    Marker::CacheEvict,
    Marker::Shed,
    Marker::TransferRetry,
];

fn phase_for(sel: u32) -> Phase {
    PHASES[(sel as usize) % PHASES.len()]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..1_000_000, 0u64..4, 0u32..3).prop_map(|(at, req, sel)| Op::Begin(at, req, sel)),
        (0u64..1_000_000, 0u64..4, 0u32..3).prop_map(|(at, req, sel)| Op::End(at, req, sel)),
        (0u64..1_000_000, 0u64..4, 0u32..3, 0u64..10_000)
            .prop_map(|(at, req, sel, dur)| Op::Span(at, req, sel, dur)),
        (0u64..1_000_000, 0u64..4, 0u32..6, 0u64..1_000_000)
            .prop_map(|(at, req, sel, val)| Op::Instant(at, req, sel, val)),
    ]
}

fn apply(rec: &mut RingRecorder, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Begin(at, req, sel) => rec.begin(at, phase_for(sel), req, sel % 3),
            Op::End(at, req, sel) => rec.end(at, phase_for(sel), req, sel % 3),
            Op::Span(at, req, sel, dur) => {
                rec.span(at, phase_for(sel), req, sel % 3, NO_GPU, dur, 0);
            }
            Op::Instant(at, req, sel, val) => rec.instant(
                at,
                MARKERS[(sel as usize) % MARKERS.len()],
                req,
                NO_LAYER,
                NO_SLOT,
                NO_GPU,
                val,
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After `take`, every identity's Begin count equals its End count,
    /// and no prefix of the trace closes a span it hasn't opened.
    #[test]
    fn spans_are_always_balanced(ops in prop::collection::vec(op_strategy(), 1..200)) {
        // Ample capacity: overflow would evict Begin records and is
        // exercised separately below.
        let mut rec = RingRecorder::with_capacity(4096);
        apply(&mut rec, &ops);
        let records = rec.take();
        let mut depth: std::collections::BTreeMap<(u32, u64, u32), i64> =
            std::collections::BTreeMap::new();
        for r in &records {
            match r.event {
                TraceEvent::Begin { phase, request, layer } => {
                    *depth.entry((phase as u32, request, layer)).or_insert(0) += 1;
                }
                TraceEvent::End { phase, request, layer } => {
                    let d = depth.entry((phase as u32, request, layer)).or_insert(0);
                    *d -= 1;
                    prop_assert!(*d >= 0, "End without a matching open Begin");
                }
                _ => {}
            }
        }
        for (id, d) in depth {
            prop_assert_eq!(d, 0, "unbalanced span for identity {:?}", id);
        }
    }

    /// Drained records are non-decreasing in virtual time no matter how
    /// adversarially the producer stamps them.
    #[test]
    fn timestamps_are_non_decreasing(
        ops in prop::collection::vec(op_strategy(), 1..200),
        capacity in 1usize..64,
    ) {
        let mut rec = RingRecorder::with_capacity(capacity);
        apply(&mut rec, &ops);
        let records = rec.take();
        for pair in records.windows(2) {
            prop_assert!(
                pair[0].at_ns <= pair[1].at_ns,
                "time went backwards: {} then {}",
                pair[0].at_ns,
                pair[1].at_ns
            );
        }
    }

    /// Overflow evicts oldest-first and the drop counter is exact:
    /// pushing N instants through capacity C drops exactly N-C and keeps
    /// the most recent C, in order.
    #[test]
    fn overflow_drops_oldest_first_and_counts_exactly(
        n in 0usize..300,
        capacity in 0usize..40,
    ) {
        let mut rec = RingRecorder::with_capacity(capacity);
        for i in 0..n {
            rec.instant(
                i as u64,
                Marker::CacheInsert,
                NO_REQUEST,
                NO_LAYER,
                NO_SLOT,
                NO_GPU,
                i as u64,
            );
        }
        prop_assert_eq!(rec.dropped(), n.saturating_sub(capacity) as u64);
        let records = rec.take();
        prop_assert_eq!(records.len(), n.min(capacity));
        let first_kept = n.saturating_sub(capacity);
        for (offset, r) in records.iter().enumerate() {
            match r.event {
                TraceEvent::Instant { value, .. } => {
                    prop_assert_eq!(
                        value,
                        (first_kept + offset) as u64,
                        "survivors must be the newest records, oldest-first order"
                    );
                }
                _ => prop_assert!(false, "unexpected record kind"),
            }
        }
    }

    /// The Chrome exporter emits valid JSON for arbitrary sequences,
    /// including ones with unmatched spans and clamped timestamps.
    #[test]
    fn chrome_export_is_always_valid_json(
        ops in prop::collection::vec(op_strategy(), 0..150),
        capacity in 1usize..128,
    ) {
        let mut rec = RingRecorder::with_capacity(capacity);
        apply(&mut rec, &ops);
        let records = rec.take();
        let doc = chrome_trace_json(&records);
        prop_assert!(
            json::validate(&doc).is_ok(),
            "exporter produced invalid JSON: {}",
            doc
        );
    }
}
