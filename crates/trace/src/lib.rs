//! Deterministic observability for the fMoE simulation.
//!
//! Every phase the paper decomposes per-request time into — queueing,
//! gating, prefetch issue, wire transfers, expert compute, evictions,
//! degraded serving — is recorded here as a structured event stamped with
//! **virtual** time. There are no wall clocks anywhere in this crate:
//! identical inputs produce byte-identical traces, so a trace diff is a
//! regression test, not a flake.
//!
//! The pieces:
//!
//! * [`event`] — the event taxonomy: [`event::Phase`] spans,
//!   [`event::Marker`] point events, and the [`event::TraceRecord`] the
//!   recorder stores.
//! * [`recorder`] — a preallocated ring buffer ([`recorder::RingRecorder`])
//!   that clamps timestamps monotone, balances span open/close, and drops
//!   oldest-first on overflow (counting every drop).
//! * [`sink`] — [`sink::TraceSink`], the cheaply clonable handle threaded
//!   through the serving engine, transfer engine, and expert cache. A
//!   disabled sink (the default) makes every emission a no-op branch, so
//!   serving output with tracing off is byte-identical to a build without
//!   tracing at all.
//! * [`metrics`] — [`metrics::MetricsRegistry`]: counters, gauges, and
//!   fixed-bucket histograms keyed by name, deterministically ordered.
//! * [`export`] — Chrome-trace JSON (`chrome://tracing`-loadable), the
//!   canonical golden-trace text format, and per-phase totals for the
//!   bench CSVs.
//! * [`json`] — a minimal dependency-free JSON validator used to prove
//!   exports are well-formed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod sink;

pub use event::{
    Marker, Nanos, Phase, TraceEvent, TraceRecord, NO_GPU, NO_LAYER, NO_REQUEST, NO_SLOT, NO_VALUE,
};
pub use export::{chrome_trace_json, events_text, phase_totals};
pub use metrics::{shard_metric, FixedHistogram, MetricsRegistry};
pub use recorder::RingRecorder;
pub use sink::TraceSink;

#[cfg(test)]
mod proptests;
