//! A minimal, dependency-free JSON validator.
//!
//! The workspace's vendored `serde` is an API shim (derives expand to
//! nothing), so there is no `serde_json` to lean on. This module is just
//! enough recursive-descent RFC 8259 grammar to *prove* that the
//! Chrome-trace exporter emits well-formed JSON — it builds no values,
//! allocates nothing, and never panics. Depth is capped so adversarial
//! proptest inputs cannot overflow the stack.

/// Maximum nesting depth accepted before bailing out.
const MAX_DEPTH: usize = 256;

/// A validation failure: byte offset plus a static description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where validation failed.
    pub at: usize,
    /// What the validator expected or rejected.
    pub message: &'static str,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            at: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_literal(&mut self, lit: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        if self.bump() != Some(b'"') {
            return Err(self.err("expected '\"'"));
        }
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(c) if c.is_ascii_hexdigit() => {}
                                _ => return Err(self.err("invalid \\u escape")),
                            }
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {}
            }
        }
    }

    fn digits(&mut self) -> Result<(), JsonError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            Err(self.err("expected digit"))
        } else {
            Ok(())
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => self.digits()?,
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        Ok(())
    }

    fn value(&mut self, depth: usize) -> Result<(), JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.expect_literal("true"),
            Some(b'f') => self.expect_literal("false"),
            Some(b'n') => self.expect_literal("null"),
            Some(b'-') => self.number(),
            Some(c) if c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), JsonError> {
        self.pos += 1; // consume '{'
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            if self.bump() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.value(depth + 1)?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(()),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), JsonError> {
        self.pos += 1; // consume '['
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value(depth + 1)?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(()),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

/// Validate that `input` is exactly one well-formed JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first violation.
pub fn validate(input: &str) -> Result<(), JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.value(0)?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Ok(())
    } else {
        Err(p.err("trailing bytes after document"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "-0.5e+10",
            "[]",
            "{}",
            "\"esc \\u00e9 \\n\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}",
            "  [ 1 , 2 ]  ",
        ] {
            assert!(validate(doc).is_ok(), "should accept: {doc}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "01",
            "\"unterminated",
            "\"bad \\x escape\"",
            "1 2",
            "[1] trailing",
        ] {
            assert!(validate(doc).is_err(), "should reject: {doc}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2);
        assert_eq!(validate(&deep).unwrap_err().message, "nesting too deep");
    }
}
