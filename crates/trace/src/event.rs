//! The trace event taxonomy.
//!
//! Two kinds of things happen in the simulator: *phases* that occupy an
//! interval of virtual time (queueing, gating, a wire transfer, expert
//! compute) and *markers* that happen at an instant (a prefetch landing,
//! an eviction, a shed request). Phases become [`TraceEvent::Begin`] /
//! [`TraceEvent::End`] pairs — or a single retroactive
//! [`TraceEvent::Span`] when the interval is only known once it has
//! ended — and markers become [`TraceEvent::Instant`] records.
//!
//! Records carry raw ids (`u64` request, `u32` layer/gpu/slot) with `MAX`
//! sentinels standing in for "not applicable", so the crate stays free of
//! model/topology dependencies and every field is `Copy`.

/// Virtual time in nanoseconds, mirroring the simulator-wide convention.
pub type Nanos = u64;

/// Sentinel request id: the event is not attributed to one request.
pub const NO_REQUEST: u64 = u64::MAX;
/// Sentinel layer index: the event is not attributed to one layer.
pub const NO_LAYER: u32 = u32::MAX;
/// Sentinel GPU index: the event is not attributed to one GPU link.
pub const NO_GPU: u32 = u32::MAX;
/// Sentinel expert slot: the event is not attributed to one expert.
pub const NO_SLOT: u32 = u32::MAX;
/// Sentinel payload value for markers that carry no measurement.
pub const NO_VALUE: u64 = u64::MAX;

/// An interval of virtual time — one slice of the per-request latency
/// decomposition the paper reports (Figures 9–15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Request sat in the arrival queue before the engine picked it up.
    Queue,
    /// Per-iteration context collection overhead.
    ContextCollect,
    /// Attention + router (gate) + shared-expert compute for one layer.
    Gate,
    /// Synchronous predictor work spent deciding what to prefetch.
    PrefetchIssue,
    /// Bytes moving across a host-to-GPU link (prefetch or on-demand).
    Transfer,
    /// Engine blocked waiting for experts it needed right now.
    OnDemandWait,
    /// Routed expert FFN compute for one layer.
    Compute,
    /// Expert-parallel all2all token routing on the peer fabric
    /// (dispatch or combine) for one layer. Only emitted by multi-GPU
    /// EP runs, so single-GPU golden traces never contain it.
    All2All,
    /// One full decode/prefill iteration, end to end.
    Iteration,
}

impl Phase {
    /// Stable lowercase name used in every export format. Renaming a
    /// variant's string is a golden-trace-breaking change.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Queue => "queue",
            Phase::ContextCollect => "context_collect",
            Phase::Gate => "gate",
            Phase::PrefetchIssue => "prefetch_issue",
            Phase::Transfer => "transfer",
            Phase::OnDemandWait => "on_demand_wait",
            Phase::Compute => "compute",
            Phase::All2All => "all2all",
            Phase::Iteration => "iteration",
        }
    }
}

/// A point event. Cache evictions, degradations, and sheds are
/// zero-duration by definition here: the *cost* they induce shows up in
/// the surrounding phase spans, the marker records that the decision
/// happened and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Marker {
    /// A prefetch plan was submitted to the transfer engine.
    PrefetchIssued,
    /// A prefetched expert finished its transfer and entered the cache.
    PrefetchArrived,
    /// A prefetch exhausted its retries and was abandoned.
    PrefetchFailed,
    /// A queued prefetch was cancelled before its transfer started.
    PrefetchCancelled,
    /// A cache miss forced a blocking on-demand expert load.
    OnDemandLoad,
    /// An on-demand load shrank its payload to meet a deadline.
    OnDemandDegraded,
    /// The engine waited on an expert whose transfer was already in flight.
    InFlightWait,
    /// A transfer attempt failed transiently and was re-queued with backoff.
    TransferRetry,
    /// A transfer failed permanently after exhausting its retry budget.
    TransferFailed,
    /// An on-demand load finished after its deadline.
    MissedDeadline,
    /// A miss was served from a peer device's spill pool over the peer
    /// link instead of reloading from host (expert parallelism).
    PeerFetch,
    /// An expert was admitted into GPU cache residency.
    CacheInsert,
    /// An expert was evicted from GPU cache residency.
    CacheEvict,
    /// The cache policy refused to admit an expert.
    CacheReject,
    /// The engine observed memory-pressure budget shrinkage this iteration.
    BudgetPressure,
    /// A request was served in degraded mode to protect the SLO.
    DegradedServe,
    /// A request was shed (rejected unserved) to protect the SLO.
    Shed,
    /// A request finished serving end to end.
    RequestFinished,
    /// A cluster replica crashed; its queued/in-flight work is lost.
    ReplicaCrash,
    /// A cluster replica entered (value `1`) or left (value `0`) a
    /// planned drain.
    ReplicaDrain,
    /// A crashed cluster replica restarted; the value is the warmup
    /// transfer cost in virtual nanoseconds (`0` for a cold restart).
    ReplicaRestart,
    /// A request originally routed to a crashed replica was re-dispatched
    /// to a healthy one; the value is its re-dispatch count so far.
    Failover,
    /// A restarted replica's cache was seeded from a donor peer; the
    /// value is the number of bytes transferred.
    CacheWarmup,
}

impl Marker {
    /// Stable lowercase name used in every export format. Renaming a
    /// variant's string is a golden-trace-breaking change.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Marker::PrefetchIssued => "prefetch_issued",
            Marker::PrefetchArrived => "prefetch_arrived",
            Marker::PrefetchFailed => "prefetch_failed",
            Marker::PrefetchCancelled => "prefetch_cancelled",
            Marker::OnDemandLoad => "on_demand_load",
            Marker::OnDemandDegraded => "on_demand_degraded",
            Marker::InFlightWait => "in_flight_wait",
            Marker::TransferRetry => "transfer_retry",
            Marker::TransferFailed => "transfer_failed",
            Marker::MissedDeadline => "missed_deadline",
            Marker::PeerFetch => "peer_fetch",
            Marker::CacheInsert => "cache_insert",
            Marker::CacheEvict => "cache_evict",
            Marker::CacheReject => "cache_reject",
            Marker::BudgetPressure => "budget_pressure",
            Marker::DegradedServe => "degraded_serve",
            Marker::Shed => "shed",
            Marker::RequestFinished => "request_finished",
            Marker::ReplicaCrash => "replica_crash",
            Marker::ReplicaDrain => "replica_drain",
            Marker::ReplicaRestart => "replica_restart",
            Marker::Failover => "failover",
            Marker::CacheWarmup => "cache_warmup",
        }
    }
}

/// The payload of one trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A phase opened at the record's timestamp.
    Begin {
        /// Which phase opened.
        phase: Phase,
        /// Owning request id, or [`NO_REQUEST`].
        request: u64,
        /// Owning layer index, or [`NO_LAYER`].
        layer: u32,
    },
    /// A phase closed at the record's timestamp. Matched to the most
    /// recent unclosed [`TraceEvent::Begin`] with the same identity.
    End {
        /// Which phase closed.
        phase: Phase,
        /// Owning request id, or [`NO_REQUEST`].
        request: u64,
        /// Owning layer index, or [`NO_LAYER`].
        layer: u32,
    },
    /// A complete phase recorded retroactively at its *end* time,
    /// carrying its duration. Used when the start lies in the past
    /// (queueing delays, drained transfer completions) — recording it as
    /// a `Begin` would violate the recorder's monotone-time guarantee.
    Span {
        /// Which phase the interval belongs to.
        phase: Phase,
        /// Owning request id, or [`NO_REQUEST`].
        request: u64,
        /// Owning layer index, or [`NO_LAYER`].
        layer: u32,
        /// GPU link the interval ran on, or [`NO_GPU`].
        gpu: u32,
        /// Interval length in virtual nanoseconds.
        dur_ns: Nanos,
        /// Payload bytes moved, or 0 when not a transfer.
        bytes: u64,
    },
    /// A point event at the record's timestamp.
    Instant {
        /// Which marker fired.
        marker: Marker,
        /// Owning request id, or [`NO_REQUEST`].
        request: u64,
        /// Owning layer index, or [`NO_LAYER`].
        layer: u32,
        /// Expert slot involved, or [`NO_SLOT`].
        slot: u32,
        /// GPU involved, or [`NO_GPU`].
        gpu: u32,
        /// Marker-specific measurement (a delay, a byte count, a
        /// factor in parts-per-million), or [`NO_VALUE`].
        value: u64,
    },
}

/// One recorded event: a virtual timestamp plus its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time the event was recorded at (monotone within a
    /// recorder; see [`crate::recorder::RingRecorder`]).
    pub at_ns: Nanos,
    /// What happened.
    pub event: TraceEvent,
}
