//! Deterministic metrics: counters, gauges, fixed-bucket histograms.
//!
//! Everything is keyed by name in `BTreeMap`s so iteration (and thus
//! every rendered export) is lexicographically ordered — no hash-order
//! nondeterminism, per the FM001 contract. Histograms use fixed upper
//! bounds chosen at registration time; observations are integer
//! nanoseconds/bytes, never floats, so two identical runs render the
//! same bytes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default histogram bucket upper bounds (inclusive), in nanoseconds:
/// 1µs, 10µs, 100µs, 1ms, 10ms, 100ms, 1s. Observations beyond the last
/// bound land in the overflow bucket.
pub const DEFAULT_LATENCY_BOUNDS_NS: [u64; 7] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// A histogram with fixed, inclusive upper-bound buckets plus one
/// overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedHistogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl FixedHistogram {
    /// Build a histogram over the given upper bounds. Bounds are sorted
    /// and deduplicated; `counts` gets one extra overflow bucket.
    #[must_use]
    pub fn new(bounds: &[u64]) -> Self {
        let mut bounds: Vec<u64> = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let counts = vec![0; bounds.len() + 1];
        FixedHistogram {
            bounds,
            counts,
            total: 0,
            sum: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Saturating sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The configured upper bounds (sorted, deduplicated).
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

/// Deterministic shard-scoped metric name: `{base}.shard{NN}.{field}`.
///
/// The shard index is zero-padded to two digits so the registry's
/// lexicographic iteration order equals shard order for up to 100 shards
/// (the sharded expert cache caps well below that). Used by
/// `fmoe-cache`'s `ShardedExpertCache` to export per-shard hit/miss
/// counters into one [`MetricsRegistry`].
#[must_use]
pub fn shard_metric(base: &str, shard: usize, field: &str) -> String {
    format!("{base}.shard{shard:02}.{field}")
}

/// Named counters, gauges, and histograms with deterministic iteration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, FixedHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Whether no metric has been touched yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Add `delta` to a counter, creating it at zero first.
    pub fn add(&mut self, name: &str, delta: u64) {
        let slot = match self.counters.get_mut(name) {
            Some(v) => v,
            None => self.counters.entry(name.to_string()).or_insert(0),
        };
        *slot = slot.saturating_add(delta);
    }

    /// Current value of a counter (zero if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge to `value`.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        match self.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                self.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Current value of a gauge, if it was ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Register a histogram with explicit bucket bounds. Observing into
    /// an unregistered name uses [`DEFAULT_LATENCY_BOUNDS_NS`].
    pub fn register_histogram(&mut self, name: &str, bounds: &[u64]) {
        if !self.histograms.contains_key(name) {
            self.histograms
                .insert(name.to_string(), FixedHistogram::new(bounds));
        }
    }

    /// Observe a value into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
            return;
        }
        let mut h = FixedHistogram::new(&DEFAULT_LATENCY_BOUNDS_NS);
        h.observe(value);
        self.histograms.insert(name.to_string(), h);
    }

    /// The named histogram, if any observation or registration created it.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&FixedHistogram> {
        self.histograms.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterate gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Render the registry as CSV with header `kind,name,field,value`.
    /// Rows are emitted in deterministic (kind, name, field) order;
    /// histograms expand to one row per bucket plus `count` and `sum`.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter,{name},value,{value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge,{name},value,{value}");
        }
        for (name, hist) in &self.histograms {
            for (i, count) in hist.bucket_counts().iter().enumerate() {
                match hist.bounds().get(i) {
                    Some(bound) => {
                        let _ = writeln!(out, "histogram,{name},le_{bound},{count}");
                    }
                    None => {
                        let _ = writeln!(out, "histogram,{name},le_inf,{count}");
                    }
                }
            }
            let _ = writeln!(out, "histogram,{name},count,{}", hist.count());
            let _ = writeln!(out, "histogram,{name},sum,{}", hist.sum());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let mut h = FixedHistogram::new(&[10, 100]);
        h.observe(10); // lands in le_10 (inclusive)
        h.observe(11); // lands in le_100
        h.observe(101); // overflow
        assert_eq!(h.bucket_counts(), &[1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 122);
    }

    #[test]
    fn bounds_are_sorted_and_deduped() {
        let h = FixedHistogram::new(&[100, 10, 100, 1]);
        assert_eq!(h.bounds(), &[1, 10, 100]);
        assert_eq!(h.bucket_counts().len(), 4);
    }

    #[test]
    fn csv_render_is_deterministic_and_ordered() {
        let mut m = MetricsRegistry::new();
        m.add("b.count", 2);
        m.add("a.count", 1);
        m.set_gauge("z.gauge", 9);
        m.register_histogram("lat", &[100]);
        m.observe("lat", 50);
        let csv = m.to_csv();
        let expected = "kind,name,field,value\n\
                        counter,a.count,value,1\n\
                        counter,b.count,value,2\n\
                        gauge,z.gauge,value,9\n\
                        histogram,lat,le_100,1\n\
                        histogram,lat,le_inf,0\n\
                        histogram,lat,count,1\n\
                        histogram,lat,sum,50\n";
        assert_eq!(csv, expected);
        assert_eq!(csv, m.clone().to_csv(), "render is pure");
    }

    #[test]
    fn unregistered_observation_uses_default_bounds() {
        let mut m = MetricsRegistry::new();
        m.observe("x", 5_000);
        let h = m.histogram("x").unwrap();
        assert_eq!(h.bounds(), &DEFAULT_LATENCY_BOUNDS_NS);
        assert_eq!(h.count(), 1);
    }
}
