//! Fixed-bin histograms for latency distributions.

use serde::Serialize;

/// A histogram with uniform bins over `[lo, hi)`; values outside the range
/// land in saturating under/overflow bins.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi` or either bound is non-finite —
    /// these are programming errors in bench code, not runtime conditions.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation. NaN is ignored.
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.total += 1;
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total recorded observations, including under/overflow.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in the under-range bucket.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count in the over-range bucket.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bin `(bin_center, count)` pairs.
    #[must_use]
    pub fn bins(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_expected_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.99);
        h.record(5.0);
        let bins = h.bins();
        assert_eq!(bins[0].1, 1);
        assert_eq!(bins[9].1, 1);
        assert_eq!(bins[5].1, 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_goes_to_flow_bins() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-1.0);
        h.record(1.0); // hi is exclusive
        h.record(100.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn nan_is_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(f64::NAN);
        assert_eq!(h.total(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn inverted_range_panics() {
        let _ = Histogram::new(1.0, 0.0, 4);
    }

    #[test]
    fn bin_centers_are_uniform() {
        let h = Histogram::new(0.0, 4.0, 4);
        let centers: Vec<f64> = h.bins().iter().map(|&(c, _)| c).collect();
        assert_eq!(centers, vec![0.5, 1.5, 2.5, 3.5]);
    }
}
