//! Cosine similarity, including the pairwise batched form used by the
//! Expert Map Matcher (paper Equations 4 and 5).

/// Cosine similarity between two vectors, in `[-1, 1]`.
///
/// Returns `0.0` when either vector has zero norm or when the lengths
/// differ by trailing zeros; if the lengths differ, only the common prefix
/// is compared (this mirrors the matcher's comparison of *partial*
/// trajectories against full stored maps).
#[must_use]
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for i in 0..n {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
    }
    if na <= 0.0 || nb <= 0.0 {
        return 0.0;
    }
    (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
}

/// Pairwise cosine similarity between a batch of query vectors and a batch
/// of candidate vectors: `result[x][y] = cos(queries[x], candidates[y])`.
///
/// This is the `score ∈ R^{B×C}` computation from the paper's Equations 4
/// (semantic search) and 5 (trajectory search), where `B` is the batch size
/// and `C` the Expert Map Store capacity.
#[must_use]
pub fn pairwise_cosine(queries: &[Vec<f64>], candidates: &[Vec<f64>]) -> Vec<Vec<f64>> {
    queries
        .iter()
        .map(|q| candidates.iter().map(|c| cosine_similarity(q, c)).collect())
        .collect()
}

/// Index and score of the best-scoring candidate for a single query, or
/// `None` when `candidates` is empty.
#[must_use]
pub fn argmax_cosine(query: &[f64], candidates: &[Vec<f64>]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in candidates.iter().enumerate() {
        let s = cosine_similarity(query, c);
        match best {
            Some((_, bs)) if bs >= s => {}
            _ => best = Some((i, s)),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_have_similarity_one() {
        let v = [1.0, 2.0, 3.0];
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_vectors_have_similarity_zero() {
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
    }

    #[test]
    fn opposite_vectors_have_similarity_minus_one() {
        assert!((cosine_similarity(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_yields_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine_similarity(&[], &[]), 0.0);
    }

    #[test]
    fn partial_prefix_comparison() {
        // A 2-element query against a 4-element candidate compares only the
        // first two entries.
        let q = [1.0, 0.0];
        let c = [1.0, 0.0, 9.0, 9.0];
        assert!((cosine_similarity(&q, &c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pairwise_shape_and_values() {
        let queries = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let candidates = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let m = pairwise_cosine(&queries, &candidates);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].len(), 3);
        assert!((m[0][0] - 1.0).abs() < 1e-12);
        assert!(m[0][1].abs() < 1e-12);
        assert!((m[1][2] - (0.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn argmax_picks_the_best_candidate() {
        let q = [1.0, 0.1];
        let candidates = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![-1.0, 0.0]];
        let (idx, score) = argmax_cosine(&q, &candidates).unwrap();
        assert_eq!(idx, 1);
        assert!(score > 0.9);
        assert!(argmax_cosine(&q, &[]).is_none());
    }
}
