//! Cosine similarity, including the pairwise batched form used by the
//! Expert Map Matcher (paper Equations 4 and 5).

/// Cosine similarity between two vectors, in `[-1, 1]`.
///
/// Returns `0.0` when either vector has zero norm or when the lengths
/// differ by trailing zeros; if the lengths differ, only the common prefix
/// is compared (this mirrors the matcher's comparison of *partial*
/// trajectories against full stored maps).
#[must_use]
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for i in 0..n {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
    }
    if na <= 0.0 || nb <= 0.0 {
        return 0.0;
    }
    (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
}

/// Pairwise cosine similarity between a batch of query vectors and a batch
/// of candidate vectors: `result[x][y] = cos(queries[x], candidates[y])`.
///
/// This is the `score ∈ R^{B×C}` computation from the paper's Equations 4
/// (semantic search) and 5 (trajectory search), where `B` is the batch size
/// and `C` the Expert Map Store capacity.
#[must_use]
pub fn pairwise_cosine(queries: &[Vec<f64>], candidates: &[Vec<f64>]) -> Vec<Vec<f64>> {
    queries
        .iter()
        .map(|q| candidates.iter().map(|c| cosine_similarity(q, c)).collect())
        .collect()
}

/// Index and score of the best-scoring candidate for a single query, or
/// `None` when `candidates` is empty.
#[must_use]
pub fn argmax_cosine(query: &[f64], candidates: &[Vec<f64>]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in candidates.iter().enumerate() {
        let s = cosine_similarity(query, c);
        match best {
            Some((_, bs)) if bs >= s => {}
            _ => best = Some((i, s)),
        }
    }
    best
}

/// Cosine of `query` against every row of a contiguous row-major slab
/// with precomputed squared row norms, returning the argmax.
///
/// `slab` holds `row_norm2.len()` rows of `stride` elements each;
/// `row_norm2[i]` must equal the left-to-right sum of squares of row `i`.
/// Scores are **bit-identical** to calling [`cosine_similarity`] per row:
/// each accumulator (dot, query norm, row norm) sums the same terms in the
/// same index order, so the split loops produce the same bits as the
/// interleaved reference loop.
///
/// Ties keep the lower index (strict `>` comparison), matching
/// [`argmax_cosine`]. Returns `None` when the slab is empty or when
/// `query.len() < stride` — a shorter query compares only a prefix of each
/// row, which the precomputed full-row norms cannot serve; callers fall
/// back to the reference path in that case.
#[must_use]
pub fn argmax_cosine_slab(
    query: &[f64],
    slab: &[f64],
    stride: usize,
    row_norm2: &[f64],
) -> Option<(usize, f64)> {
    if row_norm2.is_empty() || stride == 0 || query.len() < stride {
        return None;
    }
    debug_assert_eq!(slab.len(), stride * row_norm2.len());
    let q = &query[..stride];
    let na: f64 = q.iter().map(|x| x * x).sum();
    let mut best: Option<(usize, f64)> = None;
    for (i, &nb) in row_norm2.iter().enumerate() {
        let row = &slab[i * stride..(i + 1) * stride];
        let score = slab_row_score(q, row, na, nb);
        match best {
            Some((_, bs)) if bs >= score => {}
            _ => best = Some((i, score)),
        }
    }
    best
}

/// The `k` best-scoring rows of a slab for one query, heap-selected in
/// `O(rows · log k)` instead of a full sort.
///
/// Same layout contract and bit-identical scoring as
/// [`argmax_cosine_slab`]. The result is sorted by descending score with
/// ties broken toward the lower row index, so `result[0]` always equals
/// `argmax_cosine_slab`'s answer. Returns an empty vector in the cases
/// where `argmax_cosine_slab` returns `None`, or when `k == 0`.
#[must_use]
pub fn top_k_cosine_slab(
    query: &[f64],
    slab: &[f64],
    stride: usize,
    row_norm2: &[f64],
    k: usize,
) -> Vec<(usize, f64)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    if k == 0 || row_norm2.is_empty() || stride == 0 || query.len() < stride {
        return Vec::new();
    }
    debug_assert_eq!(slab.len(), stride * row_norm2.len());
    let q = &query[..stride];
    let na: f64 = q.iter().map(|x| x * x).sum();
    // Min-heap of the k best seen so far; `ScoredRow`'s ordering makes the
    // heap minimum the lowest score (largest index on score ties), so a
    // tie with the current worst keeps the earlier row.
    let mut heap: BinaryHeap<Reverse<ScoredRow>> = BinaryHeap::with_capacity(k + 1);
    for (i, &nb) in row_norm2.iter().enumerate() {
        let score = slab_row_score(q, &slab[i * stride..(i + 1) * stride], na, nb);
        let cand = ScoredRow { score, index: i };
        if heap.len() < k {
            heap.push(Reverse(cand));
        } else if let Some(Reverse(worst)) = heap.peek() {
            if cand > *worst {
                heap.pop();
                heap.push(Reverse(cand));
            }
        }
    }
    let mut out: Vec<ScoredRow> = heap.into_iter().map(|Reverse(s)| s).collect();
    out.sort_unstable_by(|a, b| b.cmp(a));
    out.into_iter().map(|s| (s.index, s.score)).collect()
}

/// One slab row's cosine score given the precomputed squared norms —
/// the exact expression `cosine_similarity` evaluates.
#[inline]
fn slab_row_score(q: &[f64], row: &[f64], na: f64, nb: f64) -> f64 {
    let mut dot = 0.0;
    for (a, b) in q.iter().zip(row) {
        dot += a * b;
    }
    if na <= 0.0 || nb <= 0.0 {
        return 0.0;
    }
    (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
}

/// Total order for heap selection: by score, then *descending* index, so
/// "greater" means better score or, on ties, the earlier row.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ScoredRow {
    score: f64,
    index: usize,
}

impl Eq for ScoredRow {}

impl Ord for ScoredRow {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.index.cmp(&self.index))
    }
}

impl PartialOrd for ScoredRow {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_have_similarity_one() {
        let v = [1.0, 2.0, 3.0];
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_vectors_have_similarity_zero() {
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
    }

    #[test]
    fn opposite_vectors_have_similarity_minus_one() {
        assert!((cosine_similarity(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_yields_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine_similarity(&[], &[]), 0.0);
    }

    #[test]
    fn partial_prefix_comparison() {
        // A 2-element query against a 4-element candidate compares only the
        // first two entries.
        let q = [1.0, 0.0];
        let c = [1.0, 0.0, 9.0, 9.0];
        assert!((cosine_similarity(&q, &c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pairwise_shape_and_values() {
        let queries = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let candidates = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let m = pairwise_cosine(&queries, &candidates);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].len(), 3);
        assert!((m[0][0] - 1.0).abs() < 1e-12);
        assert!(m[0][1].abs() < 1e-12);
        assert!((m[1][2] - (0.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn argmax_picks_the_best_candidate() {
        let q = [1.0, 0.1];
        let candidates = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![-1.0, 0.0]];
        let (idx, score) = argmax_cosine(&q, &candidates).unwrap();
        assert_eq!(idx, 1);
        assert!(score > 0.9);
        assert!(argmax_cosine(&q, &[]).is_none());
    }

    fn slab_fixture() -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>) {
        let rows = vec![
            vec![0.0, 1.0, 0.5],
            vec![1.0, 0.1, -0.2],
            vec![-1.0, 0.0, 0.0],
            vec![0.9, 0.2, -0.1],
        ];
        let slab: Vec<f64> = rows.iter().flatten().copied().collect();
        let norms: Vec<f64> = rows.iter().map(|r| r.iter().map(|x| x * x).sum()).collect();
        (rows, slab, norms)
    }

    #[test]
    fn slab_argmax_is_bit_identical_to_reference() {
        let (rows, slab, norms) = slab_fixture();
        let q = [1.0, 0.1, -0.3];
        let (ri, rs) = argmax_cosine(&q, &rows).unwrap();
        let (si, ss) = argmax_cosine_slab(&q, &slab, 3, &norms).unwrap();
        assert_eq!(ri, si);
        assert_eq!(rs.to_bits(), ss.to_bits());
    }

    #[test]
    fn slab_argmax_rejects_short_queries_and_empty_slabs() {
        let (_, slab, norms) = slab_fixture();
        assert!(argmax_cosine_slab(&[1.0, 0.1], &slab, 3, &norms).is_none());
        assert!(argmax_cosine_slab(&[1.0, 0.1, 0.0], &[], 3, &[]).is_none());
        assert!(argmax_cosine_slab(&[], &[], 0, &norms).is_none());
    }

    #[test]
    fn slab_top_k_matches_full_sort() {
        let (rows, slab, norms) = slab_fixture();
        let q = [1.0, 0.1, -0.3];
        let mut full: Vec<(usize, f64)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (i, cosine_similarity(&q, r)))
            .collect();
        full.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for k in 0..=5 {
            let top = top_k_cosine_slab(&q, &slab, 3, &norms, k);
            assert_eq!(top.len(), k.min(rows.len()));
            for (got, want) in top.iter().zip(&full) {
                assert_eq!(got.0, want.0, "k={k}");
                assert_eq!(got.1.to_bits(), want.1.to_bits(), "k={k}");
            }
        }
    }

    #[test]
    fn slab_top_k_breaks_ties_toward_lower_index() {
        // Rows 0 and 2 are identical, so they tie exactly.
        let rows = [vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0]];
        let slab: Vec<f64> = rows.iter().flatten().copied().collect();
        let norms: Vec<f64> = rows.iter().map(|r| r.iter().map(|x| x * x).sum()).collect();
        let top = top_k_cosine_slab(&[1.0, 0.0], &slab, 2, &norms, 2);
        assert_eq!(top[0].0, 0);
        assert_eq!(top[1].0, 2);
        let one = top_k_cosine_slab(&[1.0, 0.0], &slab, 2, &norms, 1);
        assert_eq!(one[0].0, 0);
    }
}
