//! Deterministic random-number utilities.
//!
//! Every experiment in the workspace must be reproducible bit-for-bit, so
//! all stochastic components are driven either by a seeded [`rand`] RNG or
//! by *stateless* hash-based noise. The hash-based form
//! ([`hash_to_unit`], [`gumbel_noise`]) is what the gate simulator uses: it
//! lets two independent consumers (e.g. a policy replaying a trajectory and
//! the engine generating it) observe identical randomness for the same
//! `(request, iteration, layer, expert)` coordinates without sharing any
//! mutable state.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic RNG for experiment code; a thin alias over a seeded
/// [`StdRng`] so the concrete generator can be swapped in one place.
pub type DeterministicRng = StdRng;

/// Creates a [`DeterministicRng`] from a 64-bit seed.
#[must_use]
pub fn seeded_rng(seed: u64) -> DeterministicRng {
    StdRng::seed_from_u64(seed)
}

/// SplitMix64: a tiny, high-quality 64-bit mixer.
///
/// Used both as a standalone sequential generator and (via
/// [`SplitMix64::mix`]) as a stateless hash for coordinate-indexed noise.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output and advances the state.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        Self::mix(self.state)
    }

    /// Returns the next output mapped to `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> double in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The SplitMix64 finalizer: a stateless avalanche mix of one word.
    #[must_use]
    pub fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Hashes an arbitrary coordinate tuple to a deterministic value in
/// `[0, 1)`.
///
/// The coordinates are folded left-to-right through the SplitMix64 mixer,
/// so permuting them yields independent streams.
#[must_use]
pub fn hash_to_unit(coords: &[u64]) -> f64 {
    let mut acc = 0x243F_6A88_85A3_08D3u64; // pi fractional bits
    for &c in coords {
        acc = SplitMix64::mix(acc ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    (acc >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic standard-Gumbel noise for a coordinate tuple.
///
/// Adding Gumbel noise to logits and taking top-k is equivalent to sampling
/// without replacement from the softmax — the standard trick the gate
/// simulator uses to produce realistic stochastic-but-reproducible routing.
#[must_use]
pub fn gumbel_noise(coords: &[u64]) -> f64 {
    // Clamp away from 0 and 1 to keep the double log finite.
    let u = hash_to_unit(coords).clamp(1e-12, 1.0 - 1e-12);
    -(-u.ln()).ln()
}

/// Deterministic standard-normal noise (Box–Muller on hashed uniforms).
#[must_use]
pub fn normal_noise(coords: &[u64]) -> f64 {
    let u1 = hash_to_unit(coords).clamp(1e-12, 1.0 - 1e-12);
    // Derive the second uniform from a tweaked coordinate stream.
    let mut shifted: Vec<u64> = coords.to_vec();
    shifted.push(0x5851_F42D_4C95_7F2D);
    let u2 = hash_to_unit(&shifted);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_sequence_is_reproducible() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(SplitMix64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = SplitMix64::new(1);
        for _ in 0..1000 {
            let v = g.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn hash_to_unit_is_stateless_and_coordinate_sensitive() {
        let a = hash_to_unit(&[1, 2, 3]);
        let b = hash_to_unit(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_ne!(hash_to_unit(&[1, 2, 3]), hash_to_unit(&[3, 2, 1]));
        assert_ne!(hash_to_unit(&[1, 2, 3]), hash_to_unit(&[1, 2, 4]));
    }

    #[test]
    fn hash_to_unit_looks_uniform() {
        // Crude uniformity check: mean of many hashed values near 0.5.
        let n = 10_000u64;
        let mean: f64 = (0..n).map(|i| hash_to_unit(&[i, 99])).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn gumbel_noise_is_finite_and_has_expected_location() {
        // Standard Gumbel has mean ~= Euler-Mascheroni (0.5772).
        let n = 20_000u64;
        let mean: f64 = (0..n).map(|i| gumbel_noise(&[i])).sum::<f64>() / n as f64;
        assert!((mean - 0.5772).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn normal_noise_moments() {
        let n = 20_000u64;
        let samples: Vec<f64> = (0..n).map(|i| normal_noise(&[i, 5])).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance was {var}");
    }
}
