//! Statistics utilities shared across the fMoE reproduction workspace.
//!
//! This crate has no knowledge of MoE serving; it provides the numeric
//! primitives the rest of the workspace builds on:
//!
//! * [`entropy`] — Shannon entropy of probability distributions and count
//!   vectors (used for the coarse- vs. fine-grained predictability analysis
//!   of the paper's Figure 3).
//! * [`pearson`] — Pearson correlation coefficient (Figure 8).
//! * [`cosine`] — cosine similarity, including the pairwise batched form the
//!   Expert Map Matcher uses (paper Equations 4 and 5).
//! * [`cdf`] — empirical CDFs and percentile queries (Figure 10).
//! * [`summary`] — streaming mean/variance/min/max accumulators.
//! * [`histogram`] — fixed-bin histograms for latency distributions.
//! * [`rng`] — deterministic, splittable random-number utilities so every
//!   experiment in the workspace is reproducible bit-for-bit.
//!
//! All floating point work is `f64`; vectors are plain slices so callers can
//! use whatever storage they like.
//!
//! ```
//! use fmoe_stats::{shannon_entropy, cosine_similarity, pearson_correlation};
//!
//! // A peaked gate distribution is far more predictable than a balanced one.
//! let peaked = [0.85, 0.10, 0.03, 0.02];
//! let balanced = [0.25; 4];
//! assert!(shannon_entropy(&peaked) < 1.0);
//! assert_eq!(shannon_entropy(&balanced), 2.0);
//!
//! assert!(cosine_similarity(&[1.0, 0.0], &[1.0, 0.1]) > 0.99);
//! let r = pearson_correlation(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]).unwrap();
//! assert!((r - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod cosine;
pub mod entropy;
pub mod histogram;
pub mod pearson;
pub mod rng;
pub mod summary;

pub use cdf::EmpiricalCdf;
pub use cosine::{argmax_cosine_slab, cosine_similarity, pairwise_cosine, top_k_cosine_slab};
pub use entropy::{normalized_shannon_entropy, shannon_entropy, shannon_entropy_of_counts};
pub use histogram::Histogram;
pub use pearson::pearson_correlation;
pub use rng::{hash_to_unit, DeterministicRng, SplitMix64};
pub use summary::Summary;

#[cfg(test)]
mod proptests;
