//! Shannon entropy of probability distributions and count vectors.
//!
//! The paper (§2.4, Figure 3) quantifies the predictability of expert
//! activation patterns with Shannon entropy: a balanced distribution (e.g.
//! `[0.25, 0.25, 0.25, 0.25]`) has maximal entropy and is the hardest to
//! predict, while a peaked per-iteration gate output has low entropy. We
//! reproduce that analysis with the functions here.

/// Shannon entropy `H(p) = -Σ p_i · log2(p_i)` in bits.
///
/// Zero-probability entries contribute nothing (the standard `0·log 0 = 0`
/// convention). The input is *not* required to be normalized; callers that
/// hold unnormalized weights should use [`shannon_entropy_of_counts`], which
/// normalizes first.
///
/// Returns `0.0` for an empty slice.
#[must_use]
pub fn shannon_entropy(probabilities: &[f64]) -> f64 {
    let mut h = 0.0;
    for &p in probabilities {
        if p > 0.0 {
            h -= p * p.log2();
        }
    }
    h
}

/// Shannon entropy of a count (or unnormalized weight) vector.
///
/// Counts are normalized by their sum before computing the entropy. An
/// all-zero or empty vector has entropy `0.0`.
#[must_use]
pub fn shannon_entropy_of_counts(counts: &[f64]) -> f64 {
    let total: f64 = counts.iter().copied().filter(|c| *c > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &c in counts {
        if c > 0.0 {
            let p = c / total;
            h -= p * p.log2();
        }
    }
    h
}

/// Entropy normalized by the maximum achievable for the support size,
/// `H(p) / log2(n)`, yielding a value in `[0, 1]`.
///
/// A return of `1.0` means perfectly balanced (unpredictable) and `0.0`
/// means fully deterministic. Returns `0.0` when the support has fewer than
/// two entries (entropy is degenerate there).
#[must_use]
pub fn normalized_shannon_entropy(probabilities: &[f64]) -> f64 {
    if probabilities.len() < 2 {
        return 0.0;
    }
    let max = (probabilities.len() as f64).log2();
    (shannon_entropy(probabilities) / max).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn uniform_distribution_has_log2_n_entropy() {
        let p = [0.25; 4];
        assert!((shannon_entropy(&p) - 2.0).abs() < EPS);
    }

    #[test]
    fn deterministic_distribution_has_zero_entropy() {
        let p = [1.0, 0.0, 0.0, 0.0];
        assert!(shannon_entropy(&p).abs() < EPS);
    }

    #[test]
    fn empty_slice_has_zero_entropy() {
        assert_eq!(shannon_entropy(&[]), 0.0);
    }

    #[test]
    fn entropy_of_counts_normalizes() {
        // Counts [2, 2, 2, 2] are the same distribution as [0.25; 4].
        let c = [2.0; 4];
        assert!((shannon_entropy_of_counts(&c) - 2.0).abs() < EPS);
    }

    #[test]
    fn entropy_of_zero_counts_is_zero() {
        assert_eq!(shannon_entropy_of_counts(&[0.0, 0.0]), 0.0);
        assert_eq!(shannon_entropy_of_counts(&[]), 0.0);
    }

    #[test]
    fn normalized_entropy_bounds() {
        assert!((normalized_shannon_entropy(&[0.5, 0.5]) - 1.0).abs() < EPS);
        assert!(normalized_shannon_entropy(&[1.0, 0.0]).abs() < EPS);
        assert_eq!(normalized_shannon_entropy(&[1.0]), 0.0);
    }

    #[test]
    fn peaked_less_than_balanced() {
        let peaked = [0.9, 0.05, 0.03, 0.02];
        let balanced = [0.25; 4];
        assert!(shannon_entropy(&peaked) < shannon_entropy(&balanced));
    }

    #[test]
    fn negative_entries_are_ignored() {
        // Defensive: negative "probabilities" (from numeric error) must not
        // produce NaN.
        let p = [-1e-9, 0.5, 0.5];
        let h = shannon_entropy(&p);
        assert!(h.is_finite());
        assert!((h - 1.0).abs() < 1e-6);
    }
}
