//! Streaming summary statistics (Welford's online algorithm).

use serde::Serialize;

/// Streaming accumulator for mean, variance, min and max.
///
/// Uses Welford's algorithm, so it is numerically stable for long series of
/// latency samples.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice in one pass.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.record(v);
        }
        s
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or `0.0` when fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest recorded value, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all recorded values.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_none());
        assert!(s.max().is_none());
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn non_finite_ignored() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_single_pass() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = Summary::of(&all);
        let mut merged = Summary::of(&all[..37]);
        merged.merge(&Summary::of(&all[37..]));
        assert!((whole.mean() - merged.mean()).abs() < 1e-9);
        assert!((whole.variance() - merged.variance()).abs() < 1e-9);
        assert_eq!(whole.count(), merged.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::of(&[1.0, 2.0]);
        s.merge(&Summary::new());
        assert_eq!(s.count(), 2);
        let mut e = Summary::new();
        e.merge(&Summary::of(&[1.0, 2.0]));
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }
}
