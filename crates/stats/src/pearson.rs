//! Pearson correlation coefficient.
//!
//! Used to reproduce the paper's Figure 8, which correlates expert-map
//! similarity scores with the expert hit rates achieved when following the
//! matched maps.

/// Pearson correlation coefficient between two equally-sized samples.
///
/// Returns `None` when the inputs have different lengths, fewer than two
/// points, or when either sample has zero variance (the coefficient is
/// undefined in those cases).
#[must_use]
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;

    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x <= 0.0 || var_y <= 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        let r = pearson_correlation(&xs, &ys).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        let r = pearson_correlation(&xs, &ys).unwrap();
        assert!((r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_symmetric_data() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, -1.0, 1.0];
        let r = pearson_correlation(&xs, &ys).unwrap();
        assert!(r.abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(pearson_correlation(&[1.0], &[1.0]).is_none());
        assert!(pearson_correlation(&[1.0, 2.0], &[1.0]).is_none());
        // Zero variance in x.
        assert!(pearson_correlation(&[5.0, 5.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn correlation_is_scale_invariant() {
        let xs = [1.0, 3.0, 2.0, 5.0, 4.0];
        let ys = [2.0, 7.0, 4.0, 11.0, 8.0];
        let r1 = pearson_correlation(&xs, &ys).unwrap();
        let xs_scaled: Vec<f64> = xs.iter().map(|x| 100.0 * x + 7.0).collect();
        let r2 = pearson_correlation(&xs_scaled, &ys).unwrap();
        assert!((r1 - r2).abs() < 1e-12);
    }
}
