//! Property-based tests for the statistics primitives.

#![cfg(test)]

use crate::cdf::EmpiricalCdf;
use crate::cosine::cosine_similarity;
use crate::entropy::{normalized_shannon_entropy, shannon_entropy, shannon_entropy_of_counts};
use crate::pearson::pearson_correlation;
use crate::rng::{hash_to_unit, SplitMix64};
use crate::summary::Summary;
use proptest::prelude::*;

/// A random probability distribution of length 2..=32.
fn distribution() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, 2..32).prop_map(|mut v| {
        let sum: f64 = v.iter().sum();
        if sum <= 0.0 {
            let n = v.len() as f64;
            v.iter_mut().for_each(|x| *x = 1.0 / n);
        } else {
            v.iter_mut().for_each(|x| *x /= sum);
        }
        v
    })
}

proptest! {
    #[test]
    fn entropy_is_bounded(dist in distribution()) {
        let h = shannon_entropy(&dist);
        prop_assert!(h >= -1e-9);
        prop_assert!(h <= (dist.len() as f64).log2() + 1e-9);
    }

    #[test]
    fn normalized_entropy_in_unit_interval(dist in distribution()) {
        let h = normalized_shannon_entropy(&dist);
        prop_assert!((0.0..=1.0).contains(&h));
    }

    #[test]
    fn entropy_of_counts_scale_invariant(
        dist in distribution(),
        scale in 1.0f64..1000.0,
    ) {
        let scaled: Vec<f64> = dist.iter().map(|p| p * scale).collect();
        let a = shannon_entropy_of_counts(&dist);
        let b = shannon_entropy_of_counts(&scaled);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn cosine_is_bounded_and_symmetric(
        a in prop::collection::vec(-100.0f64..100.0, 1..32),
        b in prop::collection::vec(-100.0f64..100.0, 1..32),
    ) {
        let n = a.len().min(b.len());
        let s1 = cosine_similarity(&a[..n], &b[..n]);
        let s2 = cosine_similarity(&b[..n], &a[..n]);
        prop_assert!((-1.0..=1.0).contains(&s1));
        prop_assert!((s1 - s2).abs() < 1e-12);
    }

    #[test]
    fn cosine_self_similarity_is_one(
        a in prop::collection::vec(-100.0f64..100.0, 1..32),
    ) {
        prop_assume!(a.iter().any(|&x| x.abs() > 1e-6));
        let s = cosine_similarity(&a, &a);
        prop_assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn cosine_scale_invariant(
        a in prop::collection::vec(-10.0f64..10.0, 2..16),
        b in prop::collection::vec(-10.0f64..10.0, 2..16),
        k in 0.1f64..100.0,
    ) {
        let n = a.len().min(b.len());
        let scaled: Vec<f64> = a[..n].iter().map(|x| x * k).collect();
        let s1 = cosine_similarity(&a[..n], &b[..n]);
        let s2 = cosine_similarity(&scaled, &b[..n]);
        prop_assert!((s1 - s2).abs() < 1e-9);
    }

    #[test]
    fn pearson_is_bounded(
        pairs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..64),
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson_correlation(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "{r}");
        }
    }

    #[test]
    fn pearson_of_identical_series_is_one(
        xs in prop::collection::vec(-100.0f64..100.0, 3..64),
    ) {
        if let Some(r) = pearson_correlation(&xs, &xs) {
            prop_assert!((r - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cdf_is_monotone(sample in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let cdf = EmpiricalCdf::new(sample);
        let pts = cdf.points(50);
        for w in pts.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn cdf_quantiles_are_monotone(sample in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let cdf = EmpiricalCdf::new(sample);
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let v = cdf.quantile(q).unwrap();
            prop_assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn cdf_fraction_matches_manual_count(
        sample in prop::collection::vec(-1000.0f64..1000.0, 1..100),
        x in -1000.0f64..1000.0,
    ) {
        let cdf = EmpiricalCdf::new(sample.clone());
        let manual = sample.iter().filter(|&&v| v <= x).count() as f64
            / sample.len() as f64;
        prop_assert!((cdf.fraction_at_or_below(x) - manual).abs() < 1e-12);
    }

    #[test]
    fn summary_matches_naive_computation(
        sample in prop::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let s = Summary::of(&sample);
        let mean = sample.iter().sum::<f64>() / sample.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6);
        prop_assert_eq!(s.count(), sample.len() as u64);
        let min = sample.iter().copied().fold(f64::INFINITY, f64::min);
        let max = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min().unwrap(), min);
        prop_assert_eq!(s.max().unwrap(), max);
    }

    #[test]
    fn summary_merge_is_order_independent(
        a in prop::collection::vec(-1e3f64..1e3, 1..50),
        b in prop::collection::vec(-1e3f64..1e3, 1..50),
    ) {
        let mut ab = Summary::of(&a);
        ab.merge(&Summary::of(&b));
        let mut ba = Summary::of(&b);
        ba.merge(&Summary::of(&a));
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-6);
    }

    #[test]
    fn hash_to_unit_stays_in_range(coords in prop::collection::vec(any::<u64>(), 0..8)) {
        let v = hash_to_unit(&coords);
        prop_assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn splitmix_streams_from_equal_seeds_agree(seed in any::<u64>()) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
