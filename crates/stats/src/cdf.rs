//! Empirical cumulative distribution functions.
//!
//! Used for the online-serving request-latency CDFs of the paper's
//! Figure 10 and for percentile reporting throughout the benches.

use serde::Serialize;

/// An empirical CDF built from a finite sample.
///
/// Construction sorts the sample once; queries are `O(log n)`.
#[derive(Debug, Clone, Serialize)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds a CDF from a sample. Non-finite values are dropped.
    #[must_use]
    pub fn new(mut sample: Vec<f64>) -> Self {
        sample.retain(|v| v.is_finite());
        sample.sort_by(f64::total_cmp);
        Self { sorted: sample }
    }

    /// Number of points backing the CDF.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when the CDF holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: fraction of the sample that is `<= x`. Returns `0.0` for an
    /// empty sample.
    #[must_use]
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) using linear interpolation between
    /// the two nearest order statistics (the "R-7" / NumPy default): with
    /// `pos = q·(n−1)`, the result is
    /// `sorted[⌊pos⌋]·(1−frac) + sorted[⌈pos⌉]·frac`.
    /// Returns `None` for an empty sample; `q` outside `[0, 1]` is clamped.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac)
    }

    /// Convenience: the median (`quantile(0.5)`).
    #[must_use]
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Renders the CDF as `(value, F(value))` points, thinned to at most
    /// `max_points` entries — the series a plotting tool would consume.
    #[must_use]
    pub fn points(&self, max_points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || max_points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        let step = (n as f64 / max_points as f64).max(1.0);
        let mut out = Vec::new();
        let mut last_idx = None;
        let mut i = 0.0;
        while (i as usize) < n {
            let idx = i as usize;
            out.push((self.sorted[idx], (idx + 1) as f64 / n as f64));
            last_idx = Some(idx);
            i += step;
        }
        // Always close the series at F = 1.0. Deciding by *index* rather
        // than by value matters when the maximum is duplicated: the last
        // sampled entry can share the max value while sitting at a
        // fraction < 1.0, and a value-based check would then skip the
        // terminal point entirely.
        if last_idx != Some(n - 1) {
            out.push((self.sorted[n - 1], 1.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_queries() {
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert!((cdf.fraction_at_or_below(0.5) - 0.0).abs() < 1e-12);
        assert!((cdf.fraction_at_or_below(2.0) - 0.5).abs() < 1e-12);
        assert!((cdf.fraction_at_or_below(10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let cdf = EmpiricalCdf::new(vec![0.0, 10.0]);
        assert!((cdf.quantile(0.5).unwrap() - 5.0).abs() < 1e-12);
        assert_eq!(cdf.quantile(0.0).unwrap(), 0.0);
        assert_eq!(cdf.quantile(1.0).unwrap(), 10.0);
    }

    #[test]
    fn empty_cdf_behaves() {
        let cdf = EmpiricalCdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
        assert!(cdf.quantile(0.5).is_none());
        assert!(cdf.points(10).is_empty());
    }

    #[test]
    fn non_finite_values_dropped() {
        let cdf = EmpiricalCdf::new(vec![f64::NAN, 1.0, f64::INFINITY, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn points_cover_full_range() {
        let cdf = EmpiricalCdf::new((0..100).map(f64::from).collect());
        let pts = cdf.points(10);
        assert!(pts.len() >= 10);
        assert_eq!(pts.last().unwrap().1, 1.0);
        // Monotone non-decreasing in both coordinates.
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn points_reach_one_with_duplicated_maxima() {
        // sorted = [1, 2, 2]; with max_points = 2 the sampling loop emits
        // (1, 1/3) and (2, 2/3). The last *sampled* value equals the max,
        // so the old value-based terminal check skipped the closing
        // (2, 1.0) point and the CDF never reached F = 1.0.
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 2.0]);
        let pts = cdf.points(2);
        assert_eq!(pts.last().unwrap().1, 1.0, "series must close at F=1.0");
        assert_eq!(pts, vec![(1.0, 1.0 / 3.0), (2.0, 2.0 / 3.0), (2.0, 1.0)]);

        // A heavier duplicated tail, thinned aggressively.
        let cdf = EmpiricalCdf::new(vec![1.0, 5.0, 5.0, 5.0, 5.0, 5.0]);
        let pts = cdf.points(3);
        assert_eq!(pts.last().unwrap().1, 1.0);

        // When the sampling loop *does* land on the final index, no
        // duplicate terminal point is appended.
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        let pts = cdf.points(4);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts.last().unwrap(), &(4.0, 1.0));
    }

    #[test]
    fn quantile_linear_interpolation_pinned() {
        // Asymmetric 3-point sample: linear interpolation between order
        // statistics gives distinctly different answers from nearest-rank,
        // so this pins the implemented semantics.
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 10.0]);
        assert!((cdf.quantile(0.25).unwrap() - 1.5).abs() < 1e-12);
        assert!((cdf.quantile(0.5).unwrap() - 2.0).abs() < 1e-12);
        assert!((cdf.quantile(0.75).unwrap() - 6.0).abs() < 1e-12);
        assert!((cdf.quantile(0.9).unwrap() - 8.4).abs() < 1e-12);
    }

    #[test]
    fn quantile_clamps_out_of_range() {
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(cdf.quantile(-1.0).unwrap(), 1.0);
        assert_eq!(cdf.quantile(2.0).unwrap(), 3.0);
    }
}
