//! Property-based tests for dataset generation, splitting and traces.

#![cfg(test)]

use crate::dataset::DatasetSpec;
use crate::split::train_test_split;
use crate::trace::AzureTraceSpec;
use proptest::prelude::*;

fn spec() -> impl Strategy<Value = DatasetSpec> {
    (
        2u64..64,     // clusters
        0.0f64..2.0,  // zipf
        2.0f64..6.0,  // prompt mu
        0.1f64..1.5,  // prompt sigma
        2.0f64..6.0,  // output mu
        0.1f64..1.5,  // output sigma
        any::<u64>(), // seed
    )
        .prop_map(|(clusters, zipf, pmu, psig, omu, osig, seed)| DatasetSpec {
            name: "prop".into(),
            num_clusters: clusters,
            cluster_zipf: zipf,
            prompt_len_mu: pmu,
            prompt_len_sigma: psig,
            prompt_len_range: (4, 2048),
            output_len_mu: omu,
            output_len_sigma: osig,
            output_len_range: (2, 512),
            seed,
        })
}

proptest! {
    #[test]
    fn prompts_respect_invariants(d in spec(), n in 1u64..200) {
        let prompts = d.prompts(n);
        prop_assert_eq!(prompts.len() as u64, n);
        for (i, p) in prompts.iter().enumerate() {
            prop_assert_eq!(p.id, i as u64);
            prop_assert!((d.prompt_len_range.0..=d.prompt_len_range.1)
                .contains(&p.prompt_tokens));
            prop_assert!((d.output_len_range.0..=d.output_len_range.1)
                .contains(&p.output_tokens));
            prop_assert!(p.iterations() >= 1);
            // Deterministic regeneration.
            prop_assert_eq!(*p, d.prompt(p.id));
        }
    }

    #[test]
    fn split_is_a_partition(
        d in spec(),
        n in 1u64..300,
        frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let prompts = d.prompts(n);
        let (a, b) = train_test_split(&prompts, frac, seed);
        prop_assert_eq!(a.len() + b.len(), prompts.len());
        let mut ids: Vec<u64> = a.iter().chain(&b).map(|p| p.id).collect();
        ids.sort_unstable();
        let expected: Vec<u64> = (0..n).collect();
        prop_assert_eq!(ids, expected);
    }

    #[test]
    fn traces_are_sorted_and_deterministic(
        d in spec(),
        n in 0u64..100,
        quiet in 10.0f64..5000.0,
        burst in 1.0f64..100.0,
        p_burst in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let t = AzureTraceSpec {
            num_requests: n,
            quiet_interarrival_ms: quiet,
            burst_interarrival_ms: burst,
            burst_start_probability: p_burst,
            mean_burst_length: 4.0,
            dataset: d,
            seed,
        };
        let a = t.generate();
        let b = t.generate();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len() as u64, n);
        for w in a.windows(2) {
            prop_assert!(w[0].arrival_ns <= w[1].arrival_ns);
        }
    }

    #[test]
    fn cluster_ids_stay_in_namespace(d in spec(), n in 1u64..200) {
        // All prompts of one dataset share the seed-derived namespace and
        // stay within num_clusters distinct values.
        let clusters: std::collections::HashSet<u64> =
            d.prompts(n).iter().map(|p| p.routing.cluster).collect();
        prop_assert!(clusters.len() as u64 <= d.num_clusters);
    }
}
