//! Azure-style LLM inference arrival traces.
//!
//! The paper's online-serving experiment (§6.3) replays request timings
//! and token lengths from the Microsoft Azure LLM inference traces
//! released with Splitwise (Patel et al., ISCA'24) and DynamoLLM. Those
//! traces are characterized by (a) bursty arrivals — long quiet gaps
//! punctuated by clusters of near-simultaneous requests — and (b)
//! long-tailed input lengths with much shorter outputs. We generate
//! arrival processes with those statistics: a two-state (quiet/burst)
//! modulated Poisson process with trace-matched length distributions.

use crate::dataset::{DatasetSpec, Prompt};
use fmoe_stats::rng::hash_to_unit;
use serde::{Deserialize, Serialize};

/// One trace entry: a prompt plus its arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual arrival time in nanoseconds.
    pub arrival_ns: u64,
    /// The request.
    pub prompt: Prompt,
}

/// Generator configuration for an Azure-style trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AzureTraceSpec {
    /// Number of requests to emit.
    pub num_requests: u64,
    /// Mean interarrival time during quiet periods, in milliseconds.
    pub quiet_interarrival_ms: f64,
    /// Mean interarrival time inside bursts, in milliseconds.
    pub burst_interarrival_ms: f64,
    /// Probability that a request opens a burst.
    pub burst_start_probability: f64,
    /// Mean number of requests per burst.
    pub mean_burst_length: f64,
    /// Prompts are drawn from this dataset (the paper drives LMSYS prompts
    /// with Azure timings).
    pub dataset: DatasetSpec,
    /// Seed for the arrival process.
    pub seed: u64,
}

impl AzureTraceSpec {
    /// The paper's §6.3 configuration: 64 requests sampled from the Azure
    /// conversation trace driving LMSYS-Chat-1M prompts.
    #[must_use]
    pub fn paper_online_serving(dataset: DatasetSpec) -> Self {
        Self {
            num_requests: 64,
            quiet_interarrival_ms: 2_000.0,
            burst_interarrival_ms: 50.0,
            burst_start_probability: 0.25,
            mean_burst_length: 4.0,
            dataset,
            seed: 0xA27E_7ACE,
        }
    }

    /// Generates the trace, sorted by arrival time.
    #[must_use]
    pub fn generate(&self) -> Vec<TraceEvent> {
        let mut events = Vec::with_capacity(self.num_requests as usize);
        let mut now_ns: u64 = 0;
        let mut burst_remaining: u64 = 0;
        for i in 0..self.num_requests {
            let mean_ms = if burst_remaining > 0 {
                burst_remaining -= 1;
                self.burst_interarrival_ms
            } else if hash_to_unit(&[self.seed, i, 0xB5]) < self.burst_start_probability {
                // A burst opens: geometric length with the configured mean.
                let u = hash_to_unit(&[self.seed, i, 0xB6]).clamp(1e-9, 1.0 - 1e-9);
                let p = 1.0 / self.mean_burst_length.max(1.0);
                burst_remaining = (u.ln() / (1.0 - p).ln()).ceil() as u64;
                self.burst_interarrival_ms
            } else {
                self.quiet_interarrival_ms
            };
            // Exponential interarrival with the state's mean.
            let u = hash_to_unit(&[self.seed, i, 0xB7]).clamp(1e-9, 1.0 - 1e-9);
            let gap_ms = -mean_ms * u.ln();
            now_ns += (gap_ms * 1e6) as u64;
            // Offset ids so trace prompts never collide with offline-split
            // prompts of the same dataset.
            let prompt = self.dataset.prompt(1_000_000 + i);
            events.push(TraceEvent {
                arrival_ns: now_ns,
                prompt,
            });
        }
        events
    }
}

/// Writes a trace as CSV (`arrival_ns,prompt_id,cluster,request_seed,prompt_tokens,output_tokens`).
///
/// The format is self-contained: a trace captured from one run (or edited
/// by hand, or produced by an external tool from real Azure trace rows)
/// replays identically via [`read_trace_csv`].
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_trace_csv(trace: &[TraceEvent], w: &mut impl std::io::Write) -> std::io::Result<()> {
    writeln!(
        w,
        "arrival_ns,prompt_id,cluster,request_seed,prompt_tokens,output_tokens"
    )?;
    for e in trace {
        writeln!(
            w,
            "{},{},{},{},{},{}",
            e.arrival_ns,
            e.prompt.id,
            e.prompt.routing.cluster,
            e.prompt.routing.request_seed,
            e.prompt.prompt_tokens,
            e.prompt.output_tokens
        )?;
    }
    Ok(())
}

/// Reads a trace written by [`write_trace_csv`]. Events are re-sorted by
/// arrival time so hand-edited files stay valid.
///
/// # Errors
///
/// `InvalidData` on a malformed header, row width, or field; reader
/// errors are propagated.
pub fn read_trace_csv(r: &mut impl std::io::Read) -> std::io::Result<Vec<TraceEvent>> {
    use fmoe_model::RequestRouting;
    let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| invalid("empty trace file".into()))?;
    if header.trim() != "arrival_ns,prompt_id,cluster,request_seed,prompt_tokens,output_tokens" {
        return Err(invalid(format!("unexpected trace header: {header}")));
    }
    let mut events = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 6 {
            return Err(invalid(format!("row {}: expected 6 fields", lineno + 2)));
        }
        let parse = |s: &str| -> std::io::Result<u64> {
            s.trim()
                .parse()
                .map_err(|_| invalid(format!("row {}: bad number '{s}'", lineno + 2)))
        };
        events.push(TraceEvent {
            arrival_ns: parse(fields[0])?,
            prompt: Prompt {
                id: parse(fields[1])?,
                routing: RequestRouting {
                    cluster: parse(fields[2])?,
                    request_seed: parse(fields[3])?,
                },
                prompt_tokens: parse(fields[4])?.max(1),
                output_tokens: parse(fields[5])?.max(1),
            },
        });
    }
    events.sort_by_key(|e| e.arrival_ns);
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> AzureTraceSpec {
        AzureTraceSpec::paper_online_serving(DatasetSpec::lmsys_chat())
    }

    #[test]
    fn trace_has_requested_length_and_is_sorted() {
        let t = spec().generate();
        assert_eq!(t.len(), 64);
        assert!(t.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
    }

    #[test]
    fn trace_is_deterministic() {
        assert_eq!(spec().generate(), spec().generate());
    }

    #[test]
    fn arrivals_are_bursty() {
        // Coefficient of variation of interarrivals should exceed 1 (a
        // plain Poisson process has CV = 1; burst modulation pushes it up).
        let mut s = spec();
        s.num_requests = 2000;
        let t = s.generate();
        let gaps: Vec<f64> = t
            .windows(2)
            .map(|w| (w[1].arrival_ns - w[0].arrival_ns) as f64)
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.2, "coefficient of variation {cv}");
    }

    #[test]
    fn trace_prompts_do_not_collide_with_offline_ids() {
        let t = spec().generate();
        assert!(t.iter().all(|e| e.prompt.id >= 1_000_000));
    }

    #[test]
    fn zero_requests_yield_empty_trace() {
        let mut s = spec();
        s.num_requests = 0;
        assert!(s.generate().is_empty());
    }

    #[test]
    fn csv_round_trip() {
        let t = spec().generate();
        let mut buf = Vec::new();
        write_trace_csv(&t, &mut buf).unwrap();
        let back = read_trace_csv(&mut buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn csv_rejects_malformed_input() {
        assert!(read_trace_csv(&mut "not,a,trace\n1,2,3".as_bytes()).is_err());
        let good_header =
            "arrival_ns,prompt_id,cluster,request_seed,prompt_tokens,output_tokens\n1,2,3\n";
        assert!(read_trace_csv(&mut good_header.as_bytes()).is_err());
        let bad_number =
            "arrival_ns,prompt_id,cluster,request_seed,prompt_tokens,output_tokens\n1,2,3,x,5,6\n";
        assert!(read_trace_csv(&mut bad_number.as_bytes()).is_err());
    }

    #[test]
    fn csv_resorts_hand_edited_rows() {
        let header = "arrival_ns,prompt_id,cluster,request_seed,prompt_tokens,output_tokens\n";
        let body = "500,1,0,10,8,4\n100,2,1,20,16,8\n";
        let events = read_trace_csv(&mut format!("{header}{body}").as_bytes()).unwrap();
        assert_eq!(events[0].arrival_ns, 100);
        assert_eq!(events[1].arrival_ns, 500);
    }
}
