//! Clustered synthetic prompt datasets.

use fmoe_model::RequestRouting;
use fmoe_stats::rng::{hash_to_unit, normal_noise};
use serde::{Deserialize, Serialize};

/// One request prompt: routing identity plus token lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prompt {
    /// Dataset-unique prompt id.
    pub id: u64,
    /// Routing identity consumed by the gate simulator.
    pub routing: RequestRouting,
    /// Prompt (input) length in tokens.
    pub prompt_tokens: u64,
    /// Answer (output) length in tokens; the number of decode iterations.
    pub output_tokens: u64,
}

impl Prompt {
    /// Total iterations this prompt needs: one prefill + `output_tokens`
    /// decodes (the prefill iteration emits the first answer token, so a
    /// 1-token answer is prefill-only — matching §2.1).
    #[must_use]
    pub fn iterations(&self) -> u64 {
        1 + self.output_tokens.saturating_sub(1)
    }
}

/// Statistical description of a prompt dataset.
///
/// ```
/// use fmoe_workload::{split, DatasetSpec};
///
/// let dataset = DatasetSpec::lmsys_chat();
/// let prompts = dataset.prompts(100);
/// let (history, test) = split::paper_split(&prompts);
/// assert_eq!(history.len() + test.len(), 100);
/// // Deterministic: prompt 7 is always the same request.
/// assert_eq!(dataset.prompt(7), prompts[7]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name for reports.
    pub name: String,
    /// Number of semantic clusters (topics).
    pub num_clusters: u64,
    /// Zipf exponent of cluster popularity (`0.0` = uniform; larger =
    /// more skew toward popular topics).
    pub cluster_zipf: f64,
    /// Log-normal `μ` of the prompt length (natural-log tokens).
    pub prompt_len_mu: f64,
    /// Log-normal `σ` of the prompt length.
    pub prompt_len_sigma: f64,
    /// Minimum / maximum prompt tokens (clamp).
    pub prompt_len_range: (u64, u64),
    /// Log-normal `μ` of the output length.
    pub output_len_mu: f64,
    /// Log-normal `σ` of the output length.
    pub output_len_sigma: f64,
    /// Minimum / maximum output tokens (clamp).
    pub output_len_range: (u64, u64),
    /// Master seed; also namespaces the cluster ids so two datasets never
    /// share clusters.
    pub seed: u64,
}

impl DatasetSpec {
    /// LMSYS-Chat-1M-like: broad topical coverage (48 clusters, mildly
    /// skewed), conversational prompt lengths (median ≈ 90 tokens), short
    /// answers (median ≈ 120 tokens).
    #[must_use]
    pub fn lmsys_chat() -> Self {
        Self {
            name: "LMSYS-Chat-1M".into(),
            num_clusters: 48,
            cluster_zipf: 0.9,
            prompt_len_mu: 4.5,
            prompt_len_sigma: 0.9,
            prompt_len_range: (8, 2048),
            output_len_mu: 4.8,
            output_len_sigma: 0.7,
            output_len_range: (8, 512),
            seed: 0x11A5_0001,
        }
    }

    /// ShareGPT-like: curated longer conversations — fewer clusters (24),
    /// longer prompts (median ≈ 220 tokens) and longer answers.
    #[must_use]
    pub fn sharegpt() -> Self {
        Self {
            name: "ShareGPT".into(),
            num_clusters: 24,
            cluster_zipf: 0.7,
            prompt_len_mu: 5.4,
            prompt_len_sigma: 1.0,
            prompt_len_range: (16, 4096),
            output_len_mu: 5.2,
            output_len_sigma: 0.8,
            output_len_range: (16, 768),
            seed: 0x5117_0002,
        }
    }

    /// Both evaluation datasets, in the paper's order.
    #[must_use]
    pub fn evaluation_datasets() -> Vec<Self> {
        vec![Self::lmsys_chat(), Self::sharegpt()]
    }

    /// A tiny fast dataset for unit tests.
    #[must_use]
    pub fn tiny_test() -> Self {
        Self {
            name: "Tiny-Test".into(),
            num_clusters: 4,
            cluster_zipf: 0.5,
            prompt_len_mu: 3.0,
            prompt_len_sigma: 0.4,
            prompt_len_range: (4, 64),
            output_len_mu: 2.5,
            output_len_sigma: 0.4,
            output_len_range: (4, 32),
            seed: 0x7E57,
        }
    }

    /// Samples the cluster for prompt `id` from the Zipf popularity
    /// profile.
    fn sample_cluster(&self, id: u64) -> u64 {
        // Zipf via inverse-CDF over the finite cluster set.
        let u = hash_to_unit(&[self.seed, id, 0xC1]);
        let s = self.cluster_zipf;
        let weights: Vec<f64> = (1..=self.num_clusters)
            .map(|k| 1.0 / (k as f64).powf(s))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for (i, w) in weights.iter().enumerate() {
            acc += w / total;
            if u <= acc {
                return i as u64;
            }
        }
        self.num_clusters - 1
    }

    fn sample_lognormal(&self, id: u64, tag: u64, mu: f64, sigma: f64, range: (u64, u64)) -> u64 {
        let z = normal_noise(&[self.seed, id, tag]);
        let v = (mu + sigma * z).exp();
        (v.round() as u64).clamp(range.0, range.1)
    }

    /// Generates prompt `id` of this dataset. Deterministic: the same
    /// `(spec, id)` always yields the same prompt.
    #[must_use]
    pub fn prompt(&self, id: u64) -> Prompt {
        let cluster = self.sample_cluster(id);
        Prompt {
            id,
            routing: RequestRouting {
                // Namespace clusters by dataset so LMSYS cluster 3 routes
                // differently from ShareGPT cluster 3.
                cluster: self.seed.wrapping_mul(0x1_0000).wrapping_add(cluster),
                request_seed: fmoe_stats::SplitMix64::mix(self.seed ^ id.wrapping_mul(0x9E37)),
            },
            prompt_tokens: self.sample_lognormal(
                id,
                TAG_PROMPT_LEN,
                self.prompt_len_mu,
                self.prompt_len_sigma,
                self.prompt_len_range,
            ),
            output_tokens: self.sample_lognormal(
                id,
                TAG_OUTPUT_LEN,
                self.output_len_mu,
                self.output_len_sigma,
                self.output_len_range,
            ),
        }
    }

    /// Generates the first `n` prompts.
    #[must_use]
    pub fn prompts(&self, n: u64) -> Vec<Prompt> {
        (0..n).map(|id| self.prompt(id)).collect()
    }
}

const TAG_PROMPT_LEN: u64 = 0x50;
const TAG_OUTPUT_LEN: u64 = 0x51;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn prompts_are_deterministic() {
        let d = DatasetSpec::lmsys_chat();
        assert_eq!(d.prompt(42), d.prompt(42));
        assert_ne!(d.prompt(42), d.prompt(43));
    }

    #[test]
    fn lengths_respect_ranges() {
        let d = DatasetSpec::sharegpt();
        for p in d.prompts(500) {
            assert!(p.prompt_tokens >= d.prompt_len_range.0);
            assert!(p.prompt_tokens <= d.prompt_len_range.1);
            assert!(p.output_tokens >= d.output_len_range.0);
            assert!(p.output_tokens <= d.output_len_range.1);
        }
    }

    #[test]
    fn cluster_popularity_is_skewed() {
        let d = DatasetSpec::lmsys_chat();
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for p in d.prompts(3000) {
            *counts.entry(p.routing.cluster).or_default() += 1;
        }
        assert!(counts.len() > 20, "should touch many clusters");
        let max = *counts.values().max().unwrap();
        let min_nonzero = *counts.values().min().unwrap();
        assert!(
            max > 3 * min_nonzero,
            "Zipf skew expected: {max} vs {min_nonzero}"
        );
    }

    #[test]
    fn datasets_use_disjoint_cluster_namespaces() {
        let a = DatasetSpec::lmsys_chat();
        let b = DatasetSpec::sharegpt();
        let ca: std::collections::HashSet<u64> =
            a.prompts(200).iter().map(|p| p.routing.cluster).collect();
        let cb: std::collections::HashSet<u64> =
            b.prompts(200).iter().map(|p| p.routing.cluster).collect();
        assert!(ca.is_disjoint(&cb));
    }

    #[test]
    fn sharegpt_prompts_are_longer_on_average() {
        let a = DatasetSpec::lmsys_chat();
        let b = DatasetSpec::sharegpt();
        let mean = |ps: &[Prompt]| {
            ps.iter().map(|p| p.prompt_tokens as f64).sum::<f64>() / ps.len() as f64
        };
        assert!(mean(&b.prompts(1000)) > mean(&a.prompts(1000)));
    }

    #[test]
    fn iterations_count_prefill_plus_decodes() {
        let p = Prompt {
            id: 0,
            routing: RequestRouting {
                cluster: 0,
                request_seed: 0,
            },
            prompt_tokens: 10,
            output_tokens: 5,
        };
        assert_eq!(p.iterations(), 5);
        let single = Prompt {
            output_tokens: 1,
            ..p
        };
        assert_eq!(single.iterations(), 1);
    }

    #[test]
    fn request_seeds_are_unique() {
        let d = DatasetSpec::tiny_test();
        let seeds: std::collections::HashSet<u64> = d
            .prompts(1000)
            .iter()
            .map(|p| p.routing.request_seed)
            .collect();
        assert_eq!(seeds.len(), 1000);
    }
}
