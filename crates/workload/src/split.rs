//! Train/test splitting.
//!
//! The paper's offline experiments split sampled datasets 7:3 — 70% of
//! prompts populate fMoE's Expert Map Store (and MoE-Infinity's activation
//! matrix collection), 30% drive the measured serving run (§6.1).

use crate::dataset::Prompt;
use fmoe_stats::rng::hash_to_unit;

/// Splits prompts into `(history, test)` with `history_fraction` of the
/// population going to history.
///
/// The split is deterministic per prompt id (hash-based), so adding more
/// prompts never reshuffles earlier assignments.
#[must_use]
pub fn train_test_split(
    prompts: &[Prompt],
    history_fraction: f64,
    seed: u64,
) -> (Vec<Prompt>, Vec<Prompt>) {
    let f = history_fraction.clamp(0.0, 1.0);
    let mut history = Vec::new();
    let mut test = Vec::new();
    for &p in prompts {
        if hash_to_unit(&[seed, p.id, 0x5b11]) < f {
            history.push(p);
        } else {
            test.push(p);
        }
    }
    (history, test)
}

/// The paper's standard 7:3 split.
#[must_use]
pub fn paper_split(prompts: &[Prompt]) -> (Vec<Prompt>, Vec<Prompt>) {
    train_test_split(prompts, 0.7, 0x73_73)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;

    #[test]
    fn split_fractions_are_approximate() {
        let prompts = DatasetSpec::lmsys_chat().prompts(2000);
        let (hist, test) = paper_split(&prompts);
        assert_eq!(hist.len() + test.len(), 2000);
        let frac = hist.len() as f64 / 2000.0;
        assert!((frac - 0.7).abs() < 0.05, "history fraction {frac}");
    }

    #[test]
    fn split_is_deterministic_and_stable_under_growth() {
        let d = DatasetSpec::sharegpt();
        let small = d.prompts(100);
        let large = d.prompts(200);
        let (h1, _) = paper_split(&small);
        let (h2, _) = paper_split(&large);
        // Every id assigned to history in the small run stays there.
        let ids1: std::collections::HashSet<u64> = h1.iter().map(|p| p.id).collect();
        let ids2: std::collections::HashSet<u64> = h2.iter().map(|p| p.id).collect();
        assert!(ids1.is_subset(&ids2));
    }

    #[test]
    fn extreme_fractions() {
        let prompts = DatasetSpec::tiny_test().prompts(50);
        let (h, t) = train_test_split(&prompts, 0.0, 1);
        assert!(h.is_empty());
        assert_eq!(t.len(), 50);
        let (h, t) = train_test_split(&prompts, 1.0, 1);
        assert_eq!(h.len(), 50);
        assert!(t.is_empty());
    }

    #[test]
    fn no_prompt_is_duplicated_or_lost() {
        let prompts = DatasetSpec::tiny_test().prompts(333);
        let (h, t) = train_test_split(&prompts, 0.4, 9);
        let mut ids: Vec<u64> = h.iter().chain(&t).map(|p| p.id).collect();
        ids.sort_unstable();
        let expected: Vec<u64> = (0..333).collect();
        assert_eq!(ids, expected);
    }
}
