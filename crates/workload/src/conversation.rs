//! Multi-turn conversation workloads.
//!
//! LMSYS-Chat-1M — the paper's primary dataset — is conversational: a
//! user's follow-up turn carries the whole dialogue as context and lands
//! in the same semantic neighbourhood as the turns before it. That is the
//! friendliest possible structure for fMoE's semantic map search (turn
//! `t`'s maps are near-perfect predictors for turn `t+1`), and the
//! structure request-level trackers cannot exploit.
//!
//! A conversation here keeps one routing identity (same cluster, same
//! request seed — the model of "the same dialogue continuing") while its
//! prompt grows turn over turn: each turn appends the previous answer and
//! a new user message, so token positions (and with them the router's
//! positional drift) advance exactly as a real re-prefilled dialogue's
//! would.

use crate::dataset::{DatasetSpec, Prompt};
use fmoe_stats::rng::hash_to_unit;
use serde::{Deserialize, Serialize};

/// One turn of one conversation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Turn {
    /// Conversation index.
    pub conversation: u64,
    /// Turn index within the conversation (0-based).
    pub turn: u64,
    /// The request to serve for this turn (prompt includes all context).
    pub prompt: Prompt,
}

/// Generator for conversation workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConversationSpec {
    /// Number of independent conversations.
    pub num_conversations: u64,
    /// Turns per conversation.
    pub turns_per_conversation: u64,
    /// Base dataset: supplies clusters and first-turn lengths.
    pub base: DatasetSpec,
    /// Mean tokens a user message adds per turn.
    pub user_tokens_per_turn: u64,
    /// Id offset so conversation prompts never collide with the base
    /// dataset's.
    pub id_offset: u64,
}

impl ConversationSpec {
    /// A chat-like default over the given base dataset.
    #[must_use]
    pub fn chat(base: DatasetSpec, conversations: u64, turns: u64) -> Self {
        Self {
            num_conversations: conversations,
            turns_per_conversation: turns,
            base,
            user_tokens_per_turn: 24,
            id_offset: 10_000_000,
        }
    }

    /// Generates all turns, ordered conversation-major (the natural
    /// serving order of a single user's dialogue).
    #[must_use]
    pub fn turns(&self) -> Vec<Turn> {
        let mut out = Vec::new();
        for c in 0..self.num_conversations {
            // The opening turn borrows the base dataset's statistics.
            let opener = self.base.prompt(c);
            let mut context = opener.prompt_tokens;
            for t in 0..self.turns_per_conversation {
                if t > 0 {
                    // Previous answer + new user message join the context.
                    let prev_answer = opener.output_tokens;
                    let jitter = (hash_to_unit(&[self.base.seed, c, t, 0xC0])
                        * 2.0
                        * self.user_tokens_per_turn as f64)
                        .round() as u64;
                    context += prev_answer + jitter.max(1);
                }
                out.push(Turn {
                    conversation: c,
                    turn: t,
                    prompt: Prompt {
                        id: self.id_offset + c * self.turns_per_conversation + t,
                        // Same dialogue, same routing identity: the
                        // semantic embedding stays in the conversation's
                        // neighbourhood while positions advance.
                        routing: opener.routing,
                        prompt_tokens: context,
                        output_tokens: opener.output_tokens,
                    },
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ConversationSpec {
        ConversationSpec::chat(DatasetSpec::tiny_test(), 4, 3)
    }

    #[test]
    fn turn_counts_and_ordering() {
        let turns = spec().turns();
        assert_eq!(turns.len(), 12);
        // Conversation-major order, turns ascending within.
        for w in turns.windows(2) {
            if w[0].conversation == w[1].conversation {
                assert_eq!(w[0].turn + 1, w[1].turn);
            } else {
                assert_eq!(w[0].conversation + 1, w[1].conversation);
                assert_eq!(w[1].turn, 0);
            }
        }
    }

    #[test]
    fn context_grows_monotonically_within_a_conversation() {
        let turns = spec().turns();
        for w in turns.windows(2) {
            if w[0].conversation == w[1].conversation {
                assert!(w[1].prompt.prompt_tokens > w[0].prompt.prompt_tokens);
            }
        }
    }

    #[test]
    fn a_conversation_keeps_its_routing_identity() {
        let turns = spec().turns();
        for w in turns.windows(2) {
            if w[0].conversation == w[1].conversation {
                assert_eq!(w[0].prompt.routing, w[1].prompt.routing);
            } else {
                assert_ne!(w[0].prompt.routing, w[1].prompt.routing);
            }
        }
    }

    #[test]
    fn ids_are_unique_and_offset() {
        let turns = spec().turns();
        let mut ids: Vec<u64> = turns.iter().map(|t| t.prompt.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), turns.len());
        assert!(ids.iter().all(|&i| i >= 10_000_000));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(spec().turns(), spec().turns());
    }
}
