//! Offline shim for `criterion`.
//!
//! Provides the API shape the workspace benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`], [`black_box`] and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock timer. Each benchmark runs a handful of iterations and
//! prints mean time per iteration; there is no statistics engine, HTML
//! report, or command-line parsing beyond ignoring the args `cargo bench`
//! and `cargo test` pass.

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Opaque-to-the-optimizer identity, as in upstream criterion.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    #[must_use]
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// A bare parameter value.
    #[must_use]
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_owned(),
        }
    }
}

/// Passed to benchmark closures; times the measured routine.
pub struct Bencher {
    iters: u64,
    total_ns: u128,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording elapsed wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total_ns = start.elapsed().as_nanos();
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Tiny default: the shim measures wall-clock only, so a few
        // iterations suffice and keep `cargo test`/`cargo bench` fast.
        Self { sample_size: 3 }
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { iters, total_ns: 0 };
    f(&mut bencher);
    let per_iter = if bencher.iters == 0 {
        0
    } else {
        bencher.total_ns / u128::from(bencher.iters)
    };
    println!("bench {label}: {per_iter} ns/iter ({iters} iters, wall-clock shim)");
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) -> &mut Self {
        run_one(label, self.sample_size, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Upstream rejects sample sizes below 10; the shim just clamps
        // to at least one iteration.
        self.sample_size = (n as u64).max(1).min(10);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<P, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: BenchmarkId,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(runs > 0);
    }
}
