//! Offline shim for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! marker (no serialization is ever performed through serde; persistence
//! is hand-rolled). The `serde` shim blanket-implements both traits, so
//! these derives can expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: the shim trait is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: the shim trait is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
