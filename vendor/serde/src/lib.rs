//! Offline shim for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` as forward-looking
//! metadata markers but never serializes through serde (persistence is
//! hand-rolled text in `fmoe::persist`). The traits here are empty and
//! blanket-implemented so the derives — which expand to nothing — still
//! leave every annotated type satisfying `T: Serialize` bounds.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
