//! Offline shim for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` backed by
//! `std::sync::mpsc`. The workspace uses single-consumer pipelines only,
//! so mpsc semantics suffice; `Receiver` is made cloneable-free and
//! `Sender` clones like the original.

/// Multi-producer channels (single consumer in this shim).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Error returned when the receiving side has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator over incoming messages.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_and_receive() {
        let (tx, rx) = channel::unbounded();
        tx.send(41).unwrap();
        tx.clone().send(42).unwrap();
        assert_eq!(rx.recv(), Ok(41));
        assert_eq!(rx.try_recv(), Ok(42));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }
}
