//! Offline shim for `rand`.
//!
//! Implements the slice of the `rand 0.8` API this workspace uses:
//! [`SeedableRng`], [`RngCore`], [`Rng`] and the [`rngs::StdRng`] /
//! [`rngs::SmallRng`] generators. Both generators are xoshiro256++ with
//! SplitMix64 seed expansion — high-quality, deterministic, and entirely
//! self-contained. Streams are **not** bit-compatible with upstream
//! `rand`; the workspace only relies on determinism per seed.

/// Core RNG interface (uniform raw words).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-length byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 (the upstream-documented approach).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the shim's stand-in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    /// The small generator is the same engine in this shim.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
