//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync::{RwLock, Mutex}` with parking_lot's non-poisoning
//! API (guards returned directly, poison recovered transparently).

use std::sync;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Mutual-exclusion lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(*m.lock(), "ab");
    }
}
