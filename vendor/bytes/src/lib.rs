//! Offline shim for `bytes`: the workspace declares the dependency but
//! currently uses none of its API. A minimal `Bytes` newtype is provided
//! so downstream code can start using it without re-vendoring.

/// A cheaply cloneable immutable byte buffer (shim: `Arc<[u8]>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(std::sync::Arc<[u8]>);

impl Bytes {
    /// Copies `data` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(data.into())
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}
