//! Offline shim for `proptest`.
//!
//! A deterministic mini property-testing engine covering the API surface
//! this workspace uses: the [`proptest!`] / [`prop_oneof!`] macros, range
//! and tuple strategies, `prop::collection::vec`, [`strategy::Just`],
//! `any::<T>()`, `prop_map` / `prop_filter`, and the `prop_assert*`
//! macros. Differences from upstream:
//!
//! * **No shrinking.** A failing case reports its inputs verbatim.
//! * **Deterministic seeding.** The RNG seed derives from the test's
//!   module path and name, so every run explores the same cases.
//! * `prop_assert*` panic (the runner catches the panic, prints the
//!   sampled inputs, and re-raises) instead of returning `Err`.

pub mod test_runner {
    /// Runner configuration; only `cases` is interpreted by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic RNG used for sampling (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (test path).
        #[must_use]
        pub fn from_path(path: &str) -> Self {
            // FNV-1a over the path gives a stable per-test seed.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Generates random values of `Self::Value`.
    ///
    /// Object-safe: combinators carry `where Self: Sized`, so
    /// `Box<dyn Strategy<Value = T>>` works (see [`BoxedStrategy`]).
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `pred`, resampling (bounded retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Result of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter({:?}) rejected 1000 consecutive samples",
                self.reason
            );
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        variants: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        /// Builds a union over `variants`; must be non-empty.
        #[must_use]
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
            Self { variants }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.variants.len() as u64) as usize;
            self.variants[idx].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128 as u64;
                    let off = rng.below(span);
                    ((self.start as i128) + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128 as u64;
                    let off = rng.below(span);
                    ((lo as i128) + off as i128) as $t
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    self.start + u * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    lo + u * (hi - lo)
                }
            }
        )+};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T` (`any::<u64>()` etc.).
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only: scale the unit interval symmetrically.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bound accepted by [`vec`].
    pub trait SizeRange {
        /// Samples a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty vec length range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `prop::collection::vec(element, len)`.
    #[must_use]
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_path(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest case {}/{} failed with inputs: {}",
                        __case + 1,
                        __config.cases,
                        __inputs
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Uniform random choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property assertion (shim: plain `assert!`; runner reports inputs).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)+) => { assert!($($tt)+) };
}

/// Property equality assertion (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)+) => { assert_eq!($($tt)+) };
}

/// Property inequality assertion (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)+) => { assert_ne!($($tt)+) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::from_path("bounds");
        for _ in 0..200 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (5usize..=9).sample(&mut rng);
            assert!((5..=9).contains(&w));
            let f = (-2.0f64..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let i = (-8i64..-1).sample(&mut rng);
            assert!((-8..-1).contains(&i));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_path() {
        let strat = prop::collection::vec((0u8..4, 0.0f64..1.0), 1..10);
        let mut a = TestRng::from_path("same");
        let mut b = TestRng::from_path("same");
        for _ in 0..20 {
            assert_eq!(
                format!("{:?}", strat.sample(&mut a)),
                format!("{:?}", strat.sample(&mut b))
            );
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        #[derive(Debug, PartialEq)]
        enum Pick {
            A,
            B(u8),
        }
        let strat = prop_oneof![
            Just(Pick::A),
            (0u8..4).prop_map(Pick::B),
        ];
        let mut rng = TestRng::from_path("oneof");
        let mut saw_a = false;
        let mut saw_b = false;
        for _ in 0..100 {
            match strat.sample(&mut rng) {
                Pick::A => saw_a = true,
                Pick::B(v) => {
                    assert!(v < 4);
                    saw_b = true;
                }
            }
        }
        assert!(saw_a && saw_b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn macro_generates_cases(x in 0u64..100, ys in prop::collection::vec(0i32..10, 0..5)) {
            prop_assert!(x < 100);
            prop_assume!(!ys.is_empty());
            prop_assert!(ys.iter().all(|&y| y < 10));
        }
    }
}
